package gq

// Hooks for the external test package. Most of core's tests live in
// package gq_test: they drive workloads through trafficgen, which
// imports ctrlplane, which imports core — so from inside package gq
// they would close an import cycle. These aliases expose the few
// unexported details those tests pin.

// AgentBucketDepth exposes the token-bucket sizing rule.
var AgentBucketDepth = (*Agent).bucketDepth

// Watchdog phase names as recorded in flight-recorder events.
const (
	PhaseGated   = phaseGated
	PhaseRepair  = phaseRepair
	PhaseUpgrade = phaseUpgrade
)
