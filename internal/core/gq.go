// Package gq is MPICH-GQ's core: the QoS layer that joins the MPI
// attribute mechanism to the GARA reservation architecture.
//
// The flow, following §4 of the paper:
//
//  1. The application creates a communicator targeting the links it
//     cares about (typically a two-party intercommunicator) and calls
//     MPI_Attr_put(comm, MPICH_QOS, &attr) with a QosAttribute —
//     {class, peak bandwidth, max message size} (Figure 3).
//  2. Putting the attribute *triggers* the MPI QoS Agent, which
//     translates the application-level specification into low-level
//     reservations: it extracts the flow endpoints from the
//     communicator's sockets, scales the bandwidth by the TCP protocol
//     overhead (§5.3's ≈1.06 factor, or computed exactly from the max
//     message size), sizes the edge router's token bucket (§4.3), and
//     calls GARA.
//  3. MPI_Attr_get(comm, MPICH_QOS) returns the attribute with its
//     status fields filled in, so the application can see whether the
//     requested QoS is available.
package gq

import (
	"errors"
	"fmt"

	"mpichgq/internal/diffserv"
	"mpichgq/internal/gara"
	"mpichgq/internal/mpi"
	"mpichgq/internal/netsim"
	"mpichgq/internal/units"
)

// QosClass selects the service level for a communicator's traffic.
type QosClass int

// QoS classes from §4.1.
const (
	// BestEffort requests no QoS (and releases any held reservation).
	BestEffort QosClass = iota
	// LowLatency suits small-message traffic such as certain
	// collective operations: a small premium reservation sized for
	// message headers rather than bulk bandwidth.
	LowLatency
	// Premium requests a statistical bandwidth guarantee built on the
	// EF per-hop behavior.
	Premium
)

func (c QosClass) String() string {
	switch c {
	case BestEffort:
		return "best-effort"
	case LowLatency:
		return "low-latency"
	case Premium:
		return "premium"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// QosAttribute is the application-level QoS specification attached to
// a communicator — the Go rendering of Figure 3's struct. The agent
// fills the status fields on put.
type QosAttribute struct {
	Class QosClass
	// Bandwidth is the application's peak sending rate (payload
	// bandwidth; the agent adds protocol overhead).
	Bandwidth units.BitRate
	// MaxMessageSize is the largest message the application will
	// send on this communicator. It lets the agent compute protocol
	// overhead exactly and (optionally) size token buckets
	// dynamically.
	MaxMessageSize units.ByteSize

	// Status, filled by the agent on AttrPut.
	Granted bool
	Err     error
}

// ErrNoAgent is returned when the QoS keyval is used before an agent
// is attached to the job.
var ErrNoAgent = errors.New("gq: no QoS agent attached to job")

// LowLatencyBandwidth is the reservation size used for the
// low-latency class.
const LowLatencyBandwidth = 500 * units.Kbps

// Agent is the MPI QoS Agent: it incorporates the rules used to
// translate application-level QoS specifications into the lower-level
// commands and parameters required to implement QoS.
type Agent struct {
	g   *gara.Gara
	job *mpi.Job
	kv  mpi.Keyval

	// OverheadFactor is applied to the requested bandwidth when
	// MaxMessageSize is not given: "we require a reservation value of
	// around 1.06 of the sending rate, because of TCP packet
	// overheads" (§5.3).
	OverheadFactor float64
	// BucketDivisor is the default token-bucket depth rule,
	// depth = reserved bandwidth / BucketDivisor (§4.3's /40).
	BucketDivisor int
	// DynamicBucket, when true, sizes the bucket from
	// MaxMessageSize instead of the fixed divisor — the §5.4
	// "compute the correct token bucket size dynamically" extension.
	DynamicBucket bool
	// ReserveAcks adds a small reverse-direction reservation so the
	// flow's ACK stream also rides the expedited queue. Off by
	// default: in the usual MPICH-GQ pattern both endpoints put the
	// attribute, so each direction gets a full data reservation and
	// an extra ACK rule for the same 5-tuple would shadow the peer's
	// (first-match classification). Enable it only for one-sided
	// usage with reverse-path contention.
	ReserveAcks bool
	// AckFraction sizes the ACK reservation relative to the forward
	// one.
	AckFraction float64

	// bindings tracks live reservations per (world rank, context).
	bindings map[bindingKey]*Binding
}

type bindingKey struct {
	rank int
	ctx  int
}

// Binding is the set of GARA reservations backing one communicator's
// QoS on one rank.
type Binding struct {
	Attr         QosAttribute
	Reservations []*gara.Reservation
}

// NewAgent attaches a QoS agent to an MPI job. It registers the
// MPICH_QOS keyval whose put-trigger performs reservations.
func NewAgent(g *gara.Gara, job *mpi.Job) *Agent {
	a := &Agent{
		g:              g,
		job:            job,
		OverheadFactor: 1.06,
		BucketDivisor:  diffserv.NormalBucketDivisor,
		ReserveAcks:    false,
		AckFraction:    0.05,
		bindings:       make(map[bindingKey]*Binding),
	}
	a.kv = job.KeyvalCreate("MPICH_QOS", a.onPut)
	return a
}

// Keyval returns the MPICH_QOS attribute key applications put their
// QosAttribute under.
func (a *Agent) Keyval() mpi.Keyval { return a.kv }

// Gara returns the underlying reservation system.
func (a *Agent) Gara() *gara.Gara { return a.g }

// onPut is the attribute trigger: translate and reserve.
func (a *Agent) onPut(r *mpi.Rank, c *mpi.Comm, val any) error {
	attr, ok := val.(*QosAttribute)
	if !ok {
		return fmt.Errorf("gq: MPICH_QOS attribute must be *gq.QosAttribute, got %T", val)
	}
	err := a.Apply(r, c, attr)
	attr.Err = err
	attr.Granted = err == nil && attr.Class != BestEffort
	return err
}

// Apply performs (or releases) the reservations for attr on c, as seen
// from rank r. It is exported so an external QoS agent can drive the
// same rules without going through attributes.
func (a *Agent) Apply(r *mpi.Rank, c *mpi.Comm, attr *QosAttribute) error {
	key := bindingKey{rank: r.ID(), ctx: c.Context()}
	switch attr.Class {
	case BestEffort:
		a.release(key)
		return nil
	case Premium, LowLatency:
		// Re-putting with an existing binding modifies in place.
		if b := a.bindings[key]; b != nil {
			return a.modify(b, r, c, attr)
		}
		return a.install(key, r, c, attr)
	default:
		return fmt.Errorf("gq: unknown QoS class %v", attr.Class)
	}
}

// ReservedRate returns the network reservation the agent will request
// for attr: the application bandwidth scaled by protocol overhead.
func (a *Agent) ReservedRate(attr *QosAttribute) units.BitRate {
	bw := attr.Bandwidth
	if attr.Class == LowLatency {
		if bw < LowLatencyBandwidth {
			bw = LowLatencyBandwidth
		}
	}
	return units.BitRate(float64(bw) * a.overheadFor(attr))
}

// overheadFor computes the wire/payload ratio. With a max message
// size the exact per-message overhead (64-byte MPI envelope plus one
// 40-byte TCP/IP header per MSS) is used; otherwise the measured 1.06
// default.
func (a *Agent) overheadFor(attr *QosAttribute) float64 {
	if attr.MaxMessageSize <= 0 {
		return a.OverheadFactor
	}
	const mss = 1460
	const tcpip = 40
	const envelope = 64
	payload := float64(attr.MaxMessageSize)
	segments := float64((attr.MaxMessageSize + envelope + mss - 1) / mss)
	wire := payload + envelope + segments*tcpip
	f := wire / payload
	if f < 1.02 {
		f = 1.02
	}
	return f
}

// bucketDepth sizes the edge token bucket for a reservation.
func (a *Agent) bucketDepth(attr *QosAttribute, reserved units.BitRate) units.ByteSize {
	if a.DynamicBucket && attr.MaxMessageSize > 0 {
		// Dynamic rule: admit one full message burst (with protocol
		// overhead) at once, but never less than the static rule.
		burst := units.ByteSize(float64(attr.MaxMessageSize) * a.overheadFor(attr))
		static := diffserv.DepthForRate(reserved, a.BucketDivisor)
		if burst > static {
			return burst
		}
		return static
	}
	return diffserv.DepthForRate(reserved, a.BucketDivisor)
}

// flowSpecs builds the GARA network specs for rank r's flows on c.
func (a *Agent) flowSpecs(r *mpi.Rank, c *mpi.Comm, attr *QosAttribute) []gara.Spec {
	reserved := a.ReservedRate(attr)
	depth := a.bucketDepth(attr, reserved)
	var specs []gara.Spec
	for _, ep := range r.Endpoints(c) {
		fwd := netsim.FlowKey{
			Src: ep.SrcNode, Dst: ep.DstNode,
			SrcPort: ep.SrcPort, DstPort: ep.DstPort,
			Proto: netsim.ProtoTCP,
		}
		specs = append(specs, gara.Spec{
			Type:        gara.ResourceNetwork,
			Flow:        diffserv.MatchFlow(fwd),
			Bandwidth:   reserved,
			BucketDepth: depth,
		})
		if a.ReserveAcks {
			ackBW := units.BitRate(float64(reserved) * a.AckFraction)
			if min := 50 * units.Kbps; ackBW < min {
				ackBW = min
			}
			specs = append(specs, gara.Spec{
				Type:        gara.ResourceNetwork,
				Flow:        diffserv.MatchFlow(fwd.Reverse()),
				Bandwidth:   ackBW,
				BucketDepth: diffserv.DepthForRate(ackBW, diffserv.LargeBucketDivisor),
			})
		}
	}
	return specs
}

func (a *Agent) install(key bindingKey, r *mpi.Rank, c *mpi.Comm, attr *QosAttribute) error {
	specs := a.flowSpecs(r, c, attr)
	if len(specs) == 0 {
		return fmt.Errorf("gq: communicator has no remote flows to reserve")
	}
	rs, err := a.g.CoReserve(specs...)
	if err != nil {
		return err
	}
	a.bindings[key] = &Binding{Attr: *attr, Reservations: rs}
	return nil
}

func (a *Agent) modify(b *Binding, r *mpi.Rank, c *mpi.Comm, attr *QosAttribute) error {
	specs := a.flowSpecs(r, c, attr)
	if len(specs) != len(b.Reservations) {
		// Topology changed under us; rebuild.
		a.release(bindingKey{rank: r.ID(), ctx: c.Context()})
		return a.install(bindingKey{rank: r.ID(), ctx: c.Context()}, r, c, attr)
	}
	for i, res := range b.Reservations {
		if err := res.Modify(specs[i]); err != nil {
			return err
		}
	}
	b.Attr = *attr
	return nil
}

func (a *Agent) release(key bindingKey) {
	if b := a.bindings[key]; b != nil {
		for _, res := range b.Reservations {
			res.Cancel()
		}
		delete(a.bindings, key)
	}
}

// Binding returns the live binding for rank r on communicator c, if
// any (monitoring hook).
func (a *Agent) Binding(r *mpi.Rank, c *mpi.Comm) (*Binding, bool) {
	b, ok := a.bindings[bindingKey{rank: r.ID(), ctx: c.Context()}]
	return b, ok
}

// ReleaseAll cancels every reservation the agent holds (job
// teardown).
func (a *Agent) ReleaseAll() {
	for key := range a.bindings {
		a.release(key)
	}
}

// ReserveCPU requests a DSRT CPU reservation for rank r through the
// same GARA instance — the §5.5 combined network+CPU scenario.
func (a *Agent) ReserveCPU(r *mpi.Rank, fraction float64) (*gara.Reservation, error) {
	return a.g.Reserve(gara.Spec{
		Type:     gara.ResourceCPU,
		Task:     r.Task(),
		Fraction: fraction,
	})
}
