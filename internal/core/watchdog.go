package gq

import (
	"fmt"
	"time"

	"mpichgq/internal/gara"
	"mpichgq/internal/metrics"
	"mpichgq/internal/mpi"
	"mpichgq/internal/nws"
	"mpichgq/internal/sim"
	"mpichgq/internal/spans"
	"mpichgq/internal/units"
)

// Watchdog phase names, interned for flight-recorder events
// (metrics.EvQosRepair: Subject=phase, V1=rank, V2=context id,
// V3=phase detail).
const (
	phaseBreach   = "breach"
	phaseRepair   = "repair"
	phaseFallback = "fallback"
	phaseUpgrade  = "upgrade"
	phaseGated    = "gated"
	phaseRebind   = "rebind"
)

// RepairGate lets an external health signal veto repair attempts — in
// practice a control-plane circuit breaker (ctrlplane.Breaker): when
// the domain's RM is timing out, hammering it with reservation calls
// only makes things worse. A gated attempt counts as a failure, so a
// watchdog stuck behind an open breaker still falls back to best
// effort instead of hot-looping against a dead RM. The interface is
// defined here (not in ctrlplane) so core does not depend on the
// control plane.
type RepairGate interface {
	// Allow reports whether a repair attempt may proceed now.
	Allow() bool
}

// Watchdog is the self-healing extension of the QoS agent: it watches
// a premium communicator's achieved goodput (from the metrics layer,
// smoothed by an NWS forecaster) against the application's target and
// runs a repair loop when the guarantee breaks — typically because a
// fault degraded the underlying reservation. Repair attempts are
// paced by exponential backoff with jitter; if admission keeps
// refusing, the flow falls back to best effort (a degraded
// reservation holds no capacity anyway) and the watchdog keeps
// probing at the capped interval to upgrade back when capacity
// returns.
type Watchdog struct {
	agent *Agent
	rank  *mpi.Rank
	comm  *mpi.Comm
	// attr is the premium attribute to maintain and, after a
	// fallback, to restore.
	attr QosAttribute

	// Target is the application's desired payload goodput.
	Target units.BitRate
	// BreachFraction: a sample below BreachFraction*Target counts as
	// a breach (default 0.8).
	BreachFraction float64
	// BreachCount consecutive breach samples trigger the repair loop
	// (default 3) — one bad forecast is noise, a run is an outage.
	BreachCount int
	// FallbackAfter failed repair attempts demote the flow to best
	// effort (default 4).
	FallbackAfter int
	// Backoff paces repair attempts.
	Backoff *Backoff
	// Gate, when set, is consulted before each repair attempt; a
	// refusal counts as a failed attempt (driving fallback) without
	// touching the resource manager.
	Gate RepairGate

	fc        *nws.Forecaster
	recv      *metrics.Counter
	lastBytes int64
	breaches  int
	stopped   bool
	rec       *metrics.Recorder
	tr        *spans.Tracer
	// episodes numbers breach→repair episodes so each gets its own
	// deterministic trace.
	episodes uint64
	// rebind is set by the rank-restart observer: a member of the
	// watched communicator came back in a new incarnation, so the
	// premium reservation covers stale endpoints and must be rebuilt
	// even though goodput may not yet register as breached.
	rebind bool

	repairs, fallbacks, upgrades, rebinds int
}

// NewWatchdog prepares self-healing for rank r's premium binding on c
// toward the given payload goodput target. The binding must already
// exist (AttrPut first). Goodput is measured at the receiving peer's
// mpi_recv_bytes_total counter; repairs act on r's binding.
func (a *Agent) NewWatchdog(r *mpi.Rank, c *mpi.Comm, target units.BitRate) (*Watchdog, error) {
	b, ok := a.Binding(r, c)
	if !ok {
		return nil, fmt.Errorf("gq: no QoS binding to watch on this communicator")
	}
	peer := -1
	for _, g := range c.Group() {
		if g != r.ID() {
			peer = g
		}
	}
	if peer < 0 {
		return nil, fmt.Errorf("gq: watchdog needs a two-party communicator")
	}
	k := a.g.Kernel()
	w := &Watchdog{
		agent:          a,
		rank:           r,
		comm:           c,
		attr:           b.Attr,
		Target:         target,
		BreachFraction: 0.8,
		BreachCount:    3,
		FallbackAfter:  4,
		Backoff:        NewBackoff(sim.NewRNG(k.RNG().Int63()), 500*time.Millisecond, 4*time.Second),
		fc:             nws.NewForecaster(),
		recv:           a.job.Rank(peer).RecvBytesCounter(c),
		rec:            k.Metrics().Events(),
		tr:             k.Tracer(),
	}
	// Close the QoS loop on rank restart: when a member of the watched
	// communicator comes back, its flows run over new connections the
	// old reservation does not cover, so the next watchdog cycle
	// re-reserves through GARA rather than waiting for goodput decay.
	a.job.Notify(func(rank int, ev mpi.RankEvent) {
		if ev != mpi.RankRestarted || rank == w.rank.ID() {
			return
		}
		for _, g := range c.Group() {
			if g == rank {
				w.rebind = true
				return
			}
		}
	})
	return w, nil
}

// Run executes the watchdog in the calling process until dur elapses
// (or Stop). interval is the goodput sampling period; repair attempts
// run on the Backoff schedule instead while a breach is being
// handled.
func (w *Watchdog) Run(ctx *sim.Ctx, interval, dur time.Duration) {
	k := w.agent.g.Kernel()
	deadline := k.Now() + dur
	w.lastBytes = w.recv.Value()
	lastAt := k.Now()
	for k.Now() < deadline && !w.stopped {
		ctx.Sleep(interval)
		w.sample(k.Now() - lastAt)
		lastAt = k.Now()
		if w.rebind {
			w.rebind = false
			w.episodes++
			trace := spans.DeriveTrace(spans.NSWatchdog,
				uint64(w.rank.ID())<<40|uint64(w.comm.Context())<<16|w.episodes)
			sp := w.tr.Begin(trace, 0, "wd.rebind", "watchdog")
			sp.Int("rank", int64(w.rank.ID())).
				Int("ctx", int64(w.comm.Context()))
			if w.rebuild() {
				w.rebinds++
				w.rec.Emit(metrics.EvQosRepair, phaseRebind,
					int64(w.rank.ID()), int64(w.comm.Context()), 0)
				sp.End()
			} else {
				// Re-admission refused; leave it to the breach machinery
				// (the unhealthy binding trips breachedNow immediately).
				sp.EndStatus(spans.StatusFailed)
			}
			// Goodput accounting restarts: samples spanning the outage
			// window would re-trigger on stale data.
			w.fc = nws.NewForecaster()
			w.breaches = 0
			w.lastBytes = w.recv.Value()
			lastAt = k.Now()
			continue
		}
		if w.breachedNow() {
			w.breaches++
		} else {
			w.breaches = 0
		}
		if w.breaches >= w.BreachCount {
			w.rec.Emit(metrics.EvQosRepair, phaseBreach,
				int64(w.rank.ID()), int64(w.comm.Context()), int64(w.fc.Forecast()))
			w.episodes++
			trace := spans.DeriveTrace(spans.NSWatchdog,
				uint64(w.rank.ID())<<40|uint64(w.comm.Context())<<16|w.episodes)
			outage := w.tr.Begin(trace, 0, "wd.outage", "watchdog")
			outage.Int("rank", int64(w.rank.ID())).
				Int("ctx", int64(w.comm.Context())).
				Int("forecast_bps", int64(w.fc.Forecast()))
			w.repairLoop(ctx, deadline, outage)
			// Start goodput accounting afresh: forecasts from the
			// outage would re-trigger immediately.
			w.fc = nws.NewForecaster()
			w.breaches = 0
			w.lastBytes = w.recv.Value()
			lastAt = k.Now()
		}
	}
}

// sample appends one achieved-goodput observation (bits/s).
func (w *Watchdog) sample(elapsed time.Duration) {
	if elapsed <= 0 {
		return
	}
	cur := w.recv.Value()
	w.fc.Add(float64(cur-w.lastBytes) * 8 / elapsed.Seconds())
	w.lastBytes = cur
}

// breachedNow reports whether this instant looks broken: the binding
// lost a reservation (degraded or gone), or the smoothed goodput sits
// below the breach threshold.
func (w *Watchdog) breachedNow() bool {
	b, ok := w.agent.Binding(w.rank, w.comm)
	if !ok {
		return true
	}
	for _, res := range b.Reservations {
		if res.State() != gara.StateActive {
			return true
		}
	}
	if w.fc.Len() < 2 {
		return false
	}
	return w.fc.Forecast() < w.BreachFraction*float64(w.Target)
}

// repairLoop retries restoration on the backoff schedule until it
// succeeds, the deadline passes, or Stop is called. After
// FallbackAfter failures the flow is demoted to best effort; the loop
// keeps probing (at the capped interval) and upgrades back when
// admission succeeds again.
func (w *Watchdog) repairLoop(ctx *sim.Ctx, deadline time.Duration, outage *spans.Span) {
	k := w.agent.g.Kernel()
	trace := outage.TraceID()
	w.Backoff.Reset()
	failures := 0
	fellBack := false
	for k.Now() < deadline && !w.stopped {
		if w.Gate != nil && !w.Gate.Allow() {
			// The control plane is known-bad; don't hammer it. The
			// skipped attempt still counts toward fallback.
			w.rec.Emit(metrics.EvQosRepair, phaseGated,
				int64(w.rank.ID()), int64(w.comm.Context()), int64(failures))
			w.tr.Begin(trace, outage.SpanID(), "wd.gated", "watchdog").
				Int("failures", int64(failures)).EndStatus(spans.StatusFailed)
			failures++
			if !fellBack && failures >= w.FallbackAfter {
				be := QosAttribute{Class: BestEffort}
				_ = w.agent.Apply(w.rank, w.comm, &be)
				fellBack = true
				w.fallbacks++
				w.rec.Emit(metrics.EvQosRepair, phaseFallback,
					int64(w.rank.ID()), int64(w.comm.Context()), int64(failures))
				w.tr.Begin(trace, outage.SpanID(), "wd.fallback", "watchdog").
					Int("failures", int64(failures)).End()
			}
			ctx.Sleep(w.Backoff.Next())
			continue
		}
		attempt := w.tr.Begin(trace, outage.SpanID(), "wd.attempt", "watchdog")
		attempt.Int("failures", int64(failures))
		if w.tryRestore() {
			phase := phaseRepair
			if fellBack {
				phase = phaseUpgrade
				w.upgrades++
			} else {
				w.repairs++
			}
			w.rec.Emit(metrics.EvQosRepair, phase,
				int64(w.rank.ID()), int64(w.comm.Context()), int64(failures))
			attempt.Str("phase", phase)
			attempt.End()
			w.Backoff.Reset()
			// The episode resolved, but the guarantee was still broken
			// for its duration: record the outage as breached.
			outage.Str("resolved", phase)
			outage.EndStatus(spans.StatusBreached)
			return
		}
		attempt.EndStatus(spans.StatusFailed)
		failures++
		if !fellBack && failures >= w.FallbackAfter {
			be := QosAttribute{Class: BestEffort}
			_ = w.agent.Apply(w.rank, w.comm, &be)
			fellBack = true
			w.fallbacks++
			w.rec.Emit(metrics.EvQosRepair, phaseFallback,
				int64(w.rank.ID()), int64(w.comm.Context()), int64(failures))
			w.tr.Begin(trace, outage.SpanID(), "wd.fallback", "watchdog").
				Int("failures", int64(failures)).End()
		}
		ctx.Sleep(w.Backoff.Next())
	}
	// Deadline or Stop without restoration: the outage never resolved.
	outage.Int("failures", int64(failures))
	outage.EndStatus(spans.StatusFailed)
}

// tryRestore attempts to bring the premium binding back to full
// health. Degraded reservations are reattached in place (cheap:
// re-admission on the current path); anything beyond that — a lost
// binding after fallback, or expired/cancelled handles — is rebuilt
// with a fresh reservation.
func (w *Watchdog) tryRestore() bool {
	b, ok := w.agent.Binding(w.rank, w.comm)
	if !ok {
		attr := w.attr
		return w.agent.Apply(w.rank, w.comm, &attr) == nil
	}
	healthy := true
	for _, res := range b.Reservations {
		switch res.State() {
		case gara.StateActive:
			// fine
		case gara.StateDegraded:
			if err := res.Reattach(); err != nil {
				healthy = false
			}
		default:
			healthy = false
		}
	}
	if healthy {
		return true
	}
	// In-place repair failed; rebuild from scratch. Losing the race
	// here leaves no binding, and the next attempt takes the
	// fresh-install path above.
	return w.rebuild()
}

// rebuild tears the binding down to best effort and re-applies the
// premium attribute, re-reserving over the communicator's current
// endpoints — the repair of last resort, and the whole repair when a
// peer restarted and the old reservation points at a dead flow.
func (w *Watchdog) rebuild() bool {
	be := QosAttribute{Class: BestEffort}
	_ = w.agent.Apply(w.rank, w.comm, &be)
	attr := w.attr
	return w.agent.Apply(w.rank, w.comm, &attr) == nil
}

// Stop ends Run at the next wakeup.
func (w *Watchdog) Stop() { w.stopped = true }

// Repairs returns how many times the watchdog restored the premium
// binding without a fallback.
func (w *Watchdog) Repairs() int { return w.repairs }

// Fallbacks returns how many times the flow was demoted to best
// effort.
func (w *Watchdog) Fallbacks() int { return w.fallbacks }

// Upgrades returns how many times the flow was promoted back from a
// fallback.
func (w *Watchdog) Upgrades() int { return w.upgrades }

// Rebinds returns how many times the premium binding was re-reserved
// because a communicator member restarted.
func (w *Watchdog) Rebinds() int { return w.rebinds }
