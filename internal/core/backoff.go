package gq

import (
	"time"

	"mpichgq/internal/sim"
)

// Backoff produces the retry schedule for the self-healing watchdog:
// exponential growth from Base by Factor per failure, capped at Max,
// with bounded multiplicative jitter drawn from a sim RNG so repeated
// runs under one seed replay the same schedule and a fleet of agents
// under different seeds does not retry in lockstep.
type Backoff struct {
	// Base is the first retry interval.
	Base time.Duration
	// Max caps the un-jittered interval.
	Max time.Duration
	// Factor is the per-failure growth multiplier (default 2).
	Factor float64
	// Jitter bounds the multiplicative noise: each interval is scaled
	// by a factor in [1-Jitter, 1+Jitter] (default 0.2, 0 disables).
	Jitter float64

	rng  *sim.RNG
	n    int
	hint time.Duration
}

// NewBackoff returns a Backoff with the default growth factor (2) and
// jitter (±20%).
func NewBackoff(rng *sim.RNG, base, max time.Duration) *Backoff {
	return &Backoff{Base: base, Max: max, Factor: 2, Jitter: 0.2, rng: rng}
}

// Next returns the interval to wait before the next attempt and
// advances the schedule. A pending Hint floors the result: the server
// told us when it will have capacity, so jitter must not sneak the
// retry in earlier than that.
func (b *Backoff) Next() time.Duration {
	d := float64(b.Base)
	for i := 0; i < b.n; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			break
		}
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	b.n++
	if b.Jitter > 0 && b.rng != nil {
		d *= b.rng.Jitter(b.Jitter)
	}
	out := time.Duration(d)
	if h := b.hint; h > 0 {
		b.hint = 0
		if out < h {
			out = h
		}
	}
	return out
}

// Hint floors the next interval at d — used for a server's retry-after
// from an overload rejection (ErrOverloaded). The hint is one-shot: it
// applies to the next Next() only, overriding the computed schedule
// (and its jitter) when that would retry sooner than the server asked.
func (b *Backoff) Hint(d time.Duration) {
	if d > b.hint {
		b.hint = d
	}
}

// Reset restarts the schedule from Base, called after a success.
func (b *Backoff) Reset() { b.n = 0; b.hint = 0 }

// Attempts returns how many intervals have been handed out since the
// last Reset.
func (b *Backoff) Attempts() int { return b.n }
