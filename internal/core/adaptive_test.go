package gq_test

import (
	gq "mpichgq/internal/core"
	"testing"
	"time"

	"mpichgq/internal/garnet"
	"mpichgq/internal/mpi"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/trafficgen"
	"mpichgq/internal/units"
)

// adaptiveRun streams target Mb/s under contention starting from a
// deliberately undersized reservation, with or without the adapter,
// and returns (received bytes in the second half, final reservation).
func adaptiveRun(t *testing.T, adapt bool) (units.ByteSize, units.BitRate) {
	t.Helper()
	const target = 10 * units.Mbps
	const msg = 25 * units.KB // 50 messages/s at 10 Mb/s
	const dur = 20 * time.Second
	tb := garnet.New(1)
	bl := &trafficgen.UDPBlaster{Rate: 160 * units.Mbps, Jitter: 0.1}
	if err := bl.Run(tb.CompSrc, tb.CompDst, 9000); err != nil {
		t.Fatal(err)
	}
	job := tb.NewMPIPair(tcpsim.DefaultOptions(), mpi.JobOptions{EagerThreshold: units.MB})
	agent := gq.NewAgent(tb.Gara, job)
	var lateBytes units.ByteSize
	var finalRes units.BitRate
	job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
		pc, err := r.PairComm(ctx, 1-r.ID())
		if err != nil {
			t.Error(err)
			return
		}
		// Undersized: 40% of the target.
		attr := &gq.QosAttribute{Class: gq.Premium, Bandwidth: 4 * units.Mbps}
		if err := r.AttrPut(pc, agent.Keyval(), attr); err != nil {
			t.Error(err)
			return
		}
		peer := 1 - r.RankIn(pc)
		if r.ID() == 0 {
			if adapt {
				ad, err := agent.NewAdapter(r, pc, target)
				if err != nil {
					t.Error(err)
					return
				}
				ctx.SpawnChild("adapter", func(actx *sim.Ctx) {
					ad.Run(actx, 500*time.Millisecond, dur-2*time.Second)
					if cur, ok := ad.Current(); ok {
						finalRes = cur
					}
				})
			}
			gap := target.TimeToSend(msg)
			for ctx.Now() < dur {
				if err := r.Send(ctx, pc, peer, 0, msg, nil); err != nil {
					return
				}
				ctx.Sleep(gap)
			}
			return
		}
		for {
			m, err := r.Recv(ctx, pc, peer, 0)
			if err != nil {
				return
			}
			if ctx.Now() >= dur/2 {
				lateBytes += m.Len
			}
		}
	})
	if err := tb.K.RunUntil(dur); err != nil {
		t.Fatal(err)
	}
	return lateBytes, finalRes
}

func TestAdapterGrowsStarvedReservation(t *testing.T) {
	static, _ := adaptiveRun(t, false)
	adapted, finalRes := adaptiveRun(t, true)
	staticRate := units.RateOf(static, 10*time.Second)
	adaptedRate := units.RateOf(adapted, 10*time.Second)
	// The static undersized reservation caps the stream well below
	// target; the adapter must lift it close to the 10 Mb/s target.
	if adaptedRate < 8*units.Mbps {
		t.Fatalf("adapted rate = %v, want near the 10 Mb/s target", adaptedRate)
	}
	if float64(adaptedRate) < 1.5*float64(staticRate) {
		t.Fatalf("adaptation ineffective: static %v vs adapted %v", staticRate, adaptedRate)
	}
	if finalRes <= 4*units.Mbps {
		t.Fatalf("final reservation = %v, want grown above the initial 4 Mb/s", finalRes)
	}
}

func TestAdapterDecaysOverProvisioned(t *testing.T) {
	const target = 2 * units.Mbps
	const dur = 20 * time.Second
	tb := garnet.New(1)
	job := tb.NewMPIPair(tcpsim.DefaultOptions(), mpi.JobOptions{EagerThreshold: units.MB})
	agent := gq.NewAgent(tb.Gara, job)
	var finalRes units.BitRate
	job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
		pc, err := r.PairComm(ctx, 1-r.ID())
		if err != nil {
			t.Error(err)
			return
		}
		// Grossly over-provisioned: 20 Mb/s for a 2 Mb/s stream.
		attr := &gq.QosAttribute{Class: gq.Premium, Bandwidth: 20 * units.Mbps}
		if err := r.AttrPut(pc, agent.Keyval(), attr); err != nil {
			t.Error(err)
			return
		}
		peer := 1 - r.RankIn(pc)
		if r.ID() == 0 {
			ad, err := agent.NewAdapter(r, pc, target)
			if err != nil {
				t.Error(err)
				return
			}
			ctx.SpawnChild("adapter", func(actx *sim.Ctx) {
				ad.Run(actx, 500*time.Millisecond, dur-2*time.Second)
				if cur, ok := ad.Current(); ok {
					finalRes = cur
				}
			})
			gap := target.TimeToSend(10 * units.KB)
			for ctx.Now() < dur {
				if err := r.Send(ctx, pc, peer, 0, 10*units.KB, nil); err != nil {
					return
				}
				ctx.Sleep(gap)
			}
			return
		}
		for {
			if _, err := r.Recv(ctx, pc, peer, 0); err != nil {
				return
			}
		}
	})
	if err := tb.K.RunUntil(dur); err != nil {
		t.Fatal(err)
	}
	// Decay should approach target*1.06 without dropping below it.
	if finalRes >= 10*units.Mbps {
		t.Fatalf("final reservation = %v, want decayed well below 20 Mb/s", finalRes)
	}
	if float64(finalRes) < 1.05*float64(target) {
		t.Fatalf("final reservation = %v undercuts the target floor", finalRes)
	}
}
