package gq

import (
	"fmt"

	"mpichgq/internal/diffserv"
	"mpichgq/internal/gara"
	"mpichgq/internal/netsim"
	"mpichgq/internal/units"
)

// Planner implements the paper's startup-integration plan: "we will
// integrate the reservation process with MPI startup and execution,
// so that, for example, an MPI program can select from among
// alternative resources, according to their availability, and adapt
// execution strategies or change reservations if reservations cannot
// be satisfied" (§4.2).
//
// A Placement is one candidate assignment of the job's ranks to
// nodes; the planner probes GARA for the bandwidth each placement's
// rank pairs would need and picks the first (or best) candidate whose
// reservations are all admissible.

// Placement is a candidate node assignment, one node per rank.
type Placement struct {
	Name  string
	Nodes []*netsim.Node
}

// PlanRequirement describes the bandwidth a pair of ranks needs.
type PlanRequirement struct {
	RankA, RankB int
	Bandwidth    units.BitRate
}

// Planner selects among placements by probing network availability.
type Planner struct {
	g *gara.Gara
	// Requirements between rank pairs; both directions are probed.
	Requirements []PlanRequirement
}

// NewPlanner returns a planner over g.
func NewPlanner(g *gara.Gara) *Planner { return &Planner{g: g} }

// Require adds a bidirectional bandwidth requirement between two
// ranks.
func (p *Planner) Require(rankA, rankB int, bw units.BitRate) {
	p.Requirements = append(p.Requirements, PlanRequirement{RankA: rankA, RankB: rankB, Bandwidth: bw})
}

// specsFor expands the requirements into network specs for one
// placement.
func (p *Planner) specsFor(pl Placement) ([]gara.Spec, error) {
	var specs []gara.Spec
	for _, req := range p.Requirements {
		if req.RankA < 0 || req.RankA >= len(pl.Nodes) || req.RankB < 0 || req.RankB >= len(pl.Nodes) {
			return nil, fmt.Errorf("gq: requirement ranks (%d,%d) out of range for placement %q",
				req.RankA, req.RankB, pl.Name)
		}
		a, b := pl.Nodes[req.RankA], pl.Nodes[req.RankB]
		if a == b {
			continue // co-located ranks use loopback
		}
		for _, pair := range [][2]*netsim.Node{{a, b}, {b, a}} {
			specs = append(specs, gara.Spec{
				Type:      gara.ResourceNetwork,
				Flow:      diffserv.MatchHostPair(pair[0].Addr(), pair[1].Addr(), netsim.ProtoTCP),
				Bandwidth: req.Bandwidth,
			})
		}
	}
	return specs, nil
}

// Feasible reports whether every requirement of a placement could be
// admitted right now.
func (p *Planner) Feasible(pl Placement) error {
	specs, err := p.specsFor(pl)
	if err != nil {
		return err
	}
	for _, spec := range specs {
		if err := p.g.Probe(spec); err != nil {
			return fmt.Errorf("gq: placement %q infeasible: %w", pl.Name, err)
		}
	}
	return nil
}

// Select returns the first feasible placement, or an error describing
// why each candidate failed — the caller can then "adapt execution
// strategies" (e.g. lower the requirement and retry).
func (p *Planner) Select(candidates []Placement) (Placement, error) {
	var firstErr error
	for _, pl := range candidates {
		if err := p.Feasible(pl); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return pl, nil
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("gq: no candidate placements")
	}
	return Placement{}, firstErr
}

// ReserveFor books the placement's requirements as a co-reservation
// (all or nothing), returning the handles.
func (p *Planner) ReserveFor(pl Placement) ([]*gara.Reservation, error) {
	specs, err := p.specsFor(pl)
	if err != nil {
		return nil, err
	}
	return p.g.CoReserve(specs...)
}
