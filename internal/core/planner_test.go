package gq

import (
	"testing"
	"time"

	"mpichgq/internal/garnet"
	"mpichgq/internal/netsim"
	"mpichgq/internal/units"
)

func TestPlannerPrefersFeasiblePlacement(t *testing.T) {
	tb := garnet.New(1)
	// Attach a remote site behind a thin 10 Mb/s WAN link.
	remote := tb.AddSite("thin", 10*units.Mbps, 5*time.Millisecond)

	p := NewPlanner(tb.Gara)
	p.Require(0, 1, 40*units.Mbps) // needs 40 Mb/s between the two ranks

	thin := Placement{Name: "via-thin-site", Nodes: []*netsim.Node{tb.PremSrc, remote}}
	fat := Placement{Name: "local-pair", Nodes: []*netsim.Node{tb.PremSrc, tb.PremDst}}

	// The thin site cannot carry 40 Mb/s (EF share 7 Mb/s); the local
	// pair can.
	if err := p.Feasible(thin); err == nil {
		t.Fatal("thin placement should be infeasible at 40 Mb/s")
	}
	if err := p.Feasible(fat); err != nil {
		t.Fatalf("local placement should be feasible: %v", err)
	}
	got, err := p.Select([]Placement{thin, fat})
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "local-pair" {
		t.Fatalf("selected %q, want local-pair", got.Name)
	}
}

func TestPlannerProbeHoldsNothing(t *testing.T) {
	tb := garnet.New(1)
	p := NewPlanner(tb.Gara)
	p.Require(0, 1, 50*units.Mbps)
	pl := Placement{Name: "pair", Nodes: []*netsim.Node{tb.PremSrc, tb.PremDst}}
	// Probing repeatedly must not consume capacity.
	for i := 0; i < 5; i++ {
		if err := p.Feasible(pl); err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
	}
	if u := tb.NetRM.Utilization(tb.Bottleneck, tb.K.Now()); u != 0 {
		t.Fatalf("probing held capacity: utilization %v", u)
	}
}

func TestPlannerReserveFor(t *testing.T) {
	tb := garnet.New(1)
	p := NewPlanner(tb.Gara)
	p.Require(0, 1, 60*units.Mbps)
	pl := Placement{Name: "pair", Nodes: []*netsim.Node{tb.PremSrc, tb.PremDst}}
	rs, err := p.ReserveFor(pl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 { // both directions
		t.Fatalf("reservations = %d, want 2", len(rs))
	}
	// A second identical booking would need 120 Mb/s per direction on
	// the bottleneck, above the 108.5 Mb/s EF share.
	if err := p.Feasible(pl); err == nil {
		t.Fatal("second identical booking should be infeasible")
	}
	for _, r := range rs {
		r.Cancel()
	}
	if err := p.Feasible(pl); err != nil {
		t.Fatalf("after cancel the placement should be feasible again: %v", err)
	}
}

func TestPlannerColocatedRanksNeedNoNetwork(t *testing.T) {
	tb := garnet.New(1)
	p := NewPlanner(tb.Gara)
	p.Require(0, 1, 500*units.Mbps) // absurd bandwidth, but co-located
	pl := Placement{Name: "colocated", Nodes: []*netsim.Node{tb.PremSrc, tb.PremSrc}}
	if err := p.Feasible(pl); err != nil {
		t.Fatalf("co-located ranks should always be feasible: %v", err)
	}
}

func TestPlannerNoCandidates(t *testing.T) {
	tb := garnet.New(1)
	p := NewPlanner(tb.Gara)
	if _, err := p.Select(nil); err == nil {
		t.Fatal("empty candidate list should error")
	}
}
