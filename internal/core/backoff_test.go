package gq

import (
	"testing"
	"time"

	"mpichgq/internal/sim"
)

func TestBackoffDeterministic(t *testing.T) {
	b1 := NewBackoff(sim.NewRNG(42), 100*time.Millisecond, 10*time.Second)
	b2 := NewBackoff(sim.NewRNG(42), 100*time.Millisecond, 10*time.Second)
	for i := 0; i < 12; i++ {
		d1, d2 := b1.Next(), b2.Next()
		if d1 != d2 {
			t.Fatalf("attempt %d: %v vs %v under same seed", i, d1, d2)
		}
	}
}

func TestBackoffJitterBoundedAndCapped(t *testing.T) {
	const base = 100 * time.Millisecond
	const max = 2 * time.Second
	b := NewBackoff(sim.NewRNG(7), base, max)
	ideal := float64(base)
	for i := 0; i < 20; i++ {
		if ideal > float64(max) {
			ideal = float64(max)
		}
		d := float64(b.Next())
		if d < (1-b.Jitter)*ideal || d > (1+b.Jitter)*ideal {
			t.Fatalf("attempt %d: %v outside jitter band around %v", i, time.Duration(d), time.Duration(ideal))
		}
		ideal *= b.Factor
	}
	// Deep into the schedule the interval must sit at the cap (within
	// jitter), never beyond.
	for i := 0; i < 10; i++ {
		d := float64(b.Next())
		if d > (1+b.Jitter)*float64(max) {
			t.Fatalf("interval %v exceeds jittered cap", time.Duration(d))
		}
		if d < (1-b.Jitter)*float64(max) {
			t.Fatalf("interval %v below the cap band — schedule regressed", time.Duration(d))
		}
	}
}

func TestBackoffResetsAfterSuccess(t *testing.T) {
	b := NewBackoff(sim.NewRNG(3), 100*time.Millisecond, 10*time.Second)
	for i := 0; i < 6; i++ {
		b.Next()
	}
	if b.Attempts() != 6 {
		t.Fatalf("attempts = %d, want 6", b.Attempts())
	}
	b.Reset()
	if b.Attempts() != 0 {
		t.Fatalf("attempts after reset = %d, want 0", b.Attempts())
	}
	d := b.Next()
	if d < 80*time.Millisecond || d > 120*time.Millisecond {
		t.Fatalf("first interval after reset = %v, want ~100ms", d)
	}
}

func TestBackoffHintFloorsJitteredInterval(t *testing.T) {
	const base = 100 * time.Millisecond
	const max = 10 * time.Second
	b := NewBackoff(sim.NewRNG(11), base, max)
	// A hint far above the early schedule must floor the next interval
	// exactly: jitter may never pull the retry under the server's
	// retry-after, no matter what the RNG draws.
	for i := 0; i < 50; i++ {
		hint := 5 * time.Second
		b.Reset()
		b.Hint(hint)
		if d := b.Next(); d < hint {
			t.Fatalf("draw %d: interval %v below retry-after hint %v", i, d, hint)
		}
	}
	// A hint below the computed band leaves the schedule alone — the
	// jittered exponential already waits longer than the server asked.
	b.Reset()
	b.Hint(time.Millisecond)
	d := float64(b.Next())
	if d < (1-b.Jitter)*float64(base) || d > (1+b.Jitter)*float64(base) {
		t.Fatalf("small hint perturbed the schedule: %v outside jitter band around %v",
			time.Duration(d), base)
	}
	// The hint is one-shot: the interval after a floored one returns to
	// the (jittered) exponential schedule.
	b.Reset()
	b.Hint(5 * time.Second)
	b.Next()
	d = float64(b.Next())
	ideal := float64(base) * b.Factor
	if d < (1-b.Jitter)*ideal || d > (1+b.Jitter)*ideal {
		t.Fatalf("hint leaked past one interval: %v outside band around %v",
			time.Duration(d), time.Duration(ideal))
	}
	// Reset clears a pending hint.
	b.Hint(5 * time.Second)
	b.Reset()
	d = float64(b.Next())
	if d < (1-b.Jitter)*float64(base) || d > (1+b.Jitter)*float64(base) {
		t.Fatalf("Reset kept the hint: %v outside jitter band around %v",
			time.Duration(d), base)
	}
}

func TestBackoffWithoutJitterIsExact(t *testing.T) {
	b := NewBackoff(nil, 100*time.Millisecond, time.Second)
	b.Jitter = 0
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second,
		time.Second,
	}
	for i, w := range want {
		if d := b.Next(); d != w {
			t.Fatalf("attempt %d = %v, want %v", i, d, w)
		}
	}
}
