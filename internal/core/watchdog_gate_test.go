package gq_test

import (
	gq "mpichgq/internal/core"
	"testing"
	"time"

	"mpichgq/internal/metrics"
	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// timedGate vetoes repair attempts until openAt — a deterministic
// stand-in for a control-plane circuit breaker that stays open for the
// duration of an RM outage.
type timedGate struct {
	k       *sim.Kernel
	openAt  time.Duration
	denials int
	allows  int
}

func (g *timedGate) Allow() bool {
	if g.k.Now() < g.openAt {
		g.denials++
		return false
	}
	g.allows++
	return true
}

// A gated watchdog must not touch the resource manager: every attempt
// during the outage is vetoed (counting toward fallback, so the flow
// still demotes to best effort), the probe cadence stays on the backoff
// schedule instead of hot-looping, and once the gate opens the flow is
// upgraded back.
func TestWatchdogRespectsRepairGate(t *testing.T) {
	if testing.Short() {
		t.Skip("long outage run")
	}
	const downAt, upAt = 6 * time.Second, 16 * time.Second
	const measureFrom, dur = 19 * time.Second, 26 * time.Second
	var gate *timedGate
	var rec *metrics.Recorder
	healed, w := healingRun(t, true, downAt, upAt, measureFrom, dur,
		func(k *sim.Kernel) gq.RepairGate {
			rec = k.Metrics().Events()
			rec.SetCapacity(1 << 20) // keep every event of the run
			gate = &timedGate{k: k, openAt: upAt}
			return gate
		})
	if gate == nil {
		t.Fatal("gate was never installed")
	}
	if gate.denials < w.FallbackAfter {
		t.Fatalf("gate denied %d attempts, want at least FallbackAfter=%d",
			gate.denials, w.FallbackAfter)
	}
	// Backoff caps repair attempts at one per 4s; over a 10s outage a
	// hot loop would consult the gate thousands of times.
	if gate.denials > 64 {
		t.Fatalf("gate consulted %d times during a 10s outage: repair loop is hot-looping",
			gate.denials)
	}
	// While the gate was closed, the repair loop must never have reached
	// the RM: no repair/upgrade events before the gate opened.
	gated := 0
	for _, ev := range rec.Snapshot() {
		if ev.Type != metrics.EvQosRepair {
			continue
		}
		switch ev.Subject {
		case gq.PhaseGated:
			gated++
		case gq.PhaseRepair, gq.PhaseUpgrade:
			if ev.At < upAt {
				t.Fatalf("%s at %v: repair attempt reached the RM while gated", ev.Subject, ev.At)
			}
		}
	}
	if gated < w.FallbackAfter {
		t.Fatalf("recorded %d gated events, want at least %d", gated, w.FallbackAfter)
	}
	if w.Fallbacks() != 1 {
		t.Fatalf("fallbacks = %d, want 1 (gated attempts still drive fallback)", w.Fallbacks())
	}
	if w.Upgrades() != 1 {
		t.Fatalf("upgrades = %d, want 1 after the gate opened", w.Upgrades())
	}
	if gate.allows == 0 {
		t.Fatal("gate never admitted a probe after opening")
	}
	rate := units.RateOf(healed, dur-measureFrom)
	if rate < 7*units.Mbps {
		t.Fatalf("post-upgrade rate = %v, want near 10 Mb/s", rate)
	}
}
