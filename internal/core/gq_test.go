package gq_test

import (
	gq "mpichgq/internal/core"
	"testing"
	"time"

	"mpichgq/internal/gara"
	"mpichgq/internal/garnet"
	"mpichgq/internal/mpi"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/trafficgen"
	"mpichgq/internal/units"
)

// streamBytes runs a one-way stream from rank 0 to rank 1 for dur,
// with attr put on a pair communicator first (nil attr = best
// effort), under blast Mb/s of UDP contention. The sender is paced at
// sendRate — like the paper's applications, which are app-limited
// below their reservation; a greedy TCP flow over a policer always
// oscillates (Figure 1). It returns the bytes received.
func streamBytes(t *testing.T, attr *gq.QosAttribute, blast units.BitRate, dur time.Duration) units.ByteSize {
	t.Helper()
	tb := garnet.New(1)
	job := tb.NewMPIPair(tcpsim.DefaultOptions(), mpi.JobOptions{})
	agent := gq.NewAgent(tb.Gara, job)
	if blast > 0 {
		bl := &trafficgen.UDPBlaster{Rate: blast, Jitter: 0.1}
		if err := bl.Run(tb.CompSrc, tb.CompDst, 9000); err != nil {
			t.Fatal(err)
		}
	}
	var received units.ByteSize
	const msg = 20 * units.KB
	job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
		pc, err := r.PairComm(ctx, 1-r.ID())
		if err != nil {
			t.Error(err)
			return
		}
		if attr != nil {
			a := *attr // each rank its own copy
			if err := r.AttrPut(pc, agent.Keyval(), &a); err != nil {
				t.Errorf("AttrPut: %v", err)
				return
			}
			if got, ok := pc.AttrGet(agent.Keyval()); !ok || !got.(*gq.QosAttribute).Granted {
				t.Error("attribute should report granted")
				return
			}
		}
		peer := pc.Size() - 1 - r.RankIn(pc)
		switch r.ID() {
		case 0:
			// Pace at 15 Mb/s, below the 20 Mb/s reservation.
			gap := (15 * units.Mbps).TimeToSend(msg)
			for ctx.Now() < dur {
				if err := r.Send(ctx, pc, peer, 0, msg, nil); err != nil {
					t.Error(err)
					return
				}
				ctx.Sleep(gap)
			}
		case 1:
			for ctx.Now() < dur {
				m, err := r.Recv(ctx, pc, peer, 0)
				if err != nil {
					return
				}
				received += m.Len
			}
		}
	})
	if err := tb.K.RunUntil(dur); err != nil {
		t.Fatal(err)
	}
	return received
}

func TestPremiumProtectsThroughputUnderContention(t *testing.T) {
	const dur = 5 * time.Second
	attr := &gq.QosAttribute{Class: gq.Premium, Bandwidth: 20 * units.Mbps, MaxMessageSize: 20 * units.KB}
	unprotected := streamBytes(t, nil, 150*units.Mbps, dur)
	protected := streamBytes(t, attr, 150*units.Mbps, dur)
	protRate := units.RateOf(protected, dur)
	unprotRate := units.RateOf(unprotected, dur)
	if protRate < 12*units.Mbps {
		t.Fatalf("protected rate %v, want most of the paced 15Mb/s", protRate)
	}
	if unprotRate > protRate/2 {
		t.Fatalf("contention not effective: unprotected %v vs protected %v", unprotRate, protRate)
	}
}

func TestNoContentionNeedsNoReservation(t *testing.T) {
	const dur = 2 * time.Second
	free := streamBytes(t, nil, 0, dur)
	rate := units.RateOf(free, dur)
	if rate < 12*units.Mbps {
		t.Fatalf("uncontended best effort = %v, want ~the paced 15Mb/s", rate)
	}
}

func TestBestEffortPutReleasesReservation(t *testing.T) {
	tb := garnet.New(1)
	job := tb.NewMPIPair(tcpsim.DefaultOptions(), mpi.JobOptions{})
	agent := gq.NewAgent(tb.Gara, job)
	job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
		if r.ID() != 0 {
			r.PairComm(ctx, 0)
			return
		}
		pc, err := r.PairComm(ctx, 1)
		if err != nil {
			t.Error(err)
			return
		}
		attr := &gq.QosAttribute{Class: gq.Premium, Bandwidth: 10 * units.Mbps}
		if err := r.AttrPut(pc, agent.Keyval(), attr); err != nil {
			t.Error(err)
			return
		}
		if _, ok := agent.Binding(r, pc); !ok {
			t.Error("binding missing after premium put")
			return
		}
		be := &gq.QosAttribute{Class: gq.BestEffort}
		if err := r.AttrPut(pc, agent.Keyval(), be); err != nil {
			t.Error(err)
			return
		}
		if _, ok := agent.Binding(r, pc); ok {
			t.Error("binding survived best-effort put")
		}
	})
	if err := tb.K.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !job.Done() {
		t.Fatal("job incomplete")
	}
}

func TestRePutModifiesReservation(t *testing.T) {
	tb := garnet.New(1)
	job := tb.NewMPIPair(tcpsim.DefaultOptions(), mpi.JobOptions{})
	agent := gq.NewAgent(tb.Gara, job)
	var rates []units.BitRate
	job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
		if r.ID() != 0 {
			r.PairComm(ctx, 0)
			return
		}
		pc, _ := r.PairComm(ctx, 1)
		a1 := &gq.QosAttribute{Class: gq.Premium, Bandwidth: 10 * units.Mbps}
		if err := r.AttrPut(pc, agent.Keyval(), a1); err != nil {
			t.Error(err)
			return
		}
		b, _ := agent.Binding(r, pc)
		rates = append(rates, b.Reservations[0].Spec().Bandwidth)
		a2 := &gq.QosAttribute{Class: gq.Premium, Bandwidth: 30 * units.Mbps}
		if err := r.AttrPut(pc, agent.Keyval(), a2); err != nil {
			t.Error(err)
			return
		}
		b2, _ := agent.Binding(r, pc)
		rates = append(rates, b2.Reservations[0].Spec().Bandwidth)
		if len(b2.Reservations) != len(b.Reservations) {
			t.Error("modify should keep the same reservation set")
		}
	})
	if err := tb.K.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(rates) != 2 || rates[1] <= rates[0] {
		t.Fatalf("rates = %v, want growing", rates)
	}
}

func TestOverheadFactorRules(t *testing.T) {
	tb := garnet.New(1)
	job := tb.NewMPIPair(tcpsim.DefaultOptions(), mpi.JobOptions{})
	agent := gq.NewAgent(tb.Gara, job)
	// Without MaxMessageSize: the measured 1.06.
	a := &gq.QosAttribute{Class: gq.Premium, Bandwidth: 100 * units.Mbps}
	if got := agent.ReservedRate(a); got != 106*units.Mbps {
		t.Fatalf("default overhead rate = %v, want 106Mb/s", got)
	}
	// With a large message size the computed overhead is ~3%.
	a.MaxMessageSize = 30 * units.KB
	got := agent.ReservedRate(a)
	if got < 102*units.Mbps || got > 104*units.Mbps {
		t.Fatalf("computed overhead rate = %v, want ~103Mb/s", got)
	}
	// Tiny messages have huge relative overhead.
	a.MaxMessageSize = 125 // 1 Kb messages
	if got := agent.ReservedRate(a); got < 150*units.Mbps {
		t.Fatalf("small-message overhead rate = %v, want >150Mb/s", got)
	}
}

func TestLowLatencyClassFloor(t *testing.T) {
	tb := garnet.New(1)
	job := tb.NewMPIPair(tcpsim.DefaultOptions(), mpi.JobOptions{})
	agent := gq.NewAgent(tb.Gara, job)
	a := &gq.QosAttribute{Class: gq.LowLatency, Bandwidth: 10 * units.Kbps}
	if got := agent.ReservedRate(a); got < gq.LowLatencyBandwidth {
		t.Fatalf("low-latency rate = %v, want >= %v floor", got, gq.LowLatencyBandwidth)
	}
}

func TestDynamicBucketSizing(t *testing.T) {
	tb := garnet.New(1)
	job := tb.NewMPIPair(tcpsim.DefaultOptions(), mpi.JobOptions{})
	agent := gq.NewAgent(tb.Gara, job)
	agent.DynamicBucket = true
	attr := &gq.QosAttribute{Class: gq.Premium, Bandwidth: 400 * units.Kbps, MaxMessageSize: 50 * units.KB}
	reserved := agent.ReservedRate(attr)
	depth := gq.AgentBucketDepth(agent, attr, reserved)
	// Static rule: ~424Kbps/40 bits => ~1.3KB -> floored to 1500; the
	// 50 KB message burst must win.
	if depth < 50*units.KB {
		t.Fatalf("dynamic depth = %v, want >= one message burst", depth)
	}
	agent.DynamicBucket = false
	if d := gq.AgentBucketDepth(agent, attr, reserved); d >= 50*units.KB {
		t.Fatalf("static depth = %v, should be small", d)
	}
}

func TestAgentRejectsWrongAttributeType(t *testing.T) {
	tb := garnet.New(1)
	job := tb.NewMPIPair(tcpsim.DefaultOptions(), mpi.JobOptions{})
	agent := gq.NewAgent(tb.Gara, job)
	var putErr error
	job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
		if r.ID() != 0 {
			r.PairComm(ctx, 0)
			return
		}
		pc, _ := r.PairComm(ctx, 1)
		putErr = r.AttrPut(pc, agent.Keyval(), "not-an-attr")
	})
	if err := tb.K.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if putErr == nil {
		t.Fatal("wrong attribute type should error")
	}
}

func TestReservationFailureReportedInAttr(t *testing.T) {
	tb := garnet.New(1)
	job := tb.NewMPIPair(tcpsim.DefaultOptions(), mpi.JobOptions{})
	agent := gq.NewAgent(tb.Gara, job)
	var attr *gq.QosAttribute
	job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
		if r.ID() != 0 {
			r.PairComm(ctx, 0)
			return
		}
		pc, _ := r.PairComm(ctx, 1)
		// Far beyond EF capacity (0.7*155 = 108.5 Mb/s).
		attr = &gq.QosAttribute{Class: gq.Premium, Bandwidth: 500 * units.Mbps}
		r.AttrPut(pc, agent.Keyval(), attr)
	})
	if err := tb.K.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if attr.Granted || attr.Err == nil {
		t.Fatalf("oversized request should fail: %+v", attr)
	}
}

func TestReserveCPUThroughAgent(t *testing.T) {
	tb := garnet.New(1)
	job := tb.NewMPIPair(tcpsim.DefaultOptions(), mpi.JobOptions{})
	agent := gq.NewAgent(tb.Gara, job)
	var res *gara.Reservation
	job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
		if r.ID() != 0 {
			return
		}
		var err error
		res, err = agent.ReserveCPU(r, 0.9)
		if err != nil {
			t.Error(err)
			return
		}
		if r.Task().Reservation() != 0.9 {
			t.Error("DSRT share not applied")
		}
	})
	if err := tb.K.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if res == nil || res.State() != gara.StateActive {
		t.Fatal("CPU reservation not active")
	}
}

func TestReleaseAll(t *testing.T) {
	tb := garnet.New(1)
	job := tb.NewMPIPair(tcpsim.DefaultOptions(), mpi.JobOptions{})
	agent := gq.NewAgent(tb.Gara, job)
	job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
		pc, _ := r.PairComm(ctx, 1-r.ID())
		a := &gq.QosAttribute{Class: gq.Premium, Bandwidth: 5 * units.Mbps}
		if err := r.AttrPut(pc, agent.Keyval(), a); err != nil {
			t.Error(err)
		}
	})
	if err := tb.K.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	agent.ReleaseAll()
	// All EF capacity must be free again.
	if u := tb.NetRM.Utilization(tb.Bottleneck, tb.K.Now()); u != 0 {
		t.Fatalf("utilization after ReleaseAll = %v", u)
	}
}

// measureRTT runs small-message ping-pong under contention and
// returns the mean round-trip latency, with or without a low-latency
// QoS attribute on the pair communicator.
func measureRTT(t *testing.T, lowLatency bool) time.Duration {
	t.Helper()
	tb := garnet.New(1)
	// Saturating blast: the best-effort queues stay full, so
	// unprotected small messages queue behind ~96 KB per hop and
	// sometimes drop (RTO); expedited ones bypass it all.
	bl := &trafficgen.UDPBlaster{Rate: 165 * units.Mbps, Jitter: 0.1}
	if err := bl.Run(tb.CompSrc, tb.CompDst, 9000); err != nil {
		t.Fatal(err)
	}
	job := tb.NewMPIPair(tcpsim.DefaultOptions(), mpi.JobOptions{})
	agent := gq.NewAgent(tb.Gara, job)
	const rounds = 100
	var total time.Duration
	done := 0
	job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
		pc, err := r.PairComm(ctx, 1-r.ID())
		if err != nil {
			t.Error(err)
			return
		}
		if lowLatency {
			attr := &gq.QosAttribute{Class: gq.LowLatency, Bandwidth: 200 * units.Kbps, MaxMessageSize: units.KB}
			if err := r.AttrPut(pc, agent.Keyval(), attr); err != nil {
				t.Error(err)
				return
			}
		}
		peer := 1 - r.RankIn(pc)
		for i := 0; i < rounds; i++ {
			if r.ID() == 0 {
				start := ctx.Now()
				if err := r.Send(ctx, pc, peer, 0, units.KB, nil); err != nil {
					return
				}
				if _, err := r.Recv(ctx, pc, peer, 0); err != nil {
					return
				}
				total += ctx.Now() - start
				done++
				ctx.Sleep(50 * time.Millisecond) // small-message control traffic
			} else {
				if _, err := r.Recv(ctx, pc, peer, 0); err != nil {
					return
				}
				if err := r.Send(ctx, pc, peer, 0, units.KB, nil); err != nil {
					return
				}
			}
		}
	})
	if err := tb.K.RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if done < rounds/2 {
		// Heavily degraded runs complete few rounds; average what we
		// saw (it will be large, which is the point).
		if done == 0 {
			return time.Hour
		}
	}
	return total / time.Duration(done)
}

func TestLowLatencyClassReducesLatency(t *testing.T) {
	be := measureRTT(t, false)
	ll := measureRTT(t, true)
	// The expedited queue bypasses the blaster-filled best-effort
	// queues: small-message RTT must drop dramatically ("low-latency
	// [is] suitable for small message traffic: e.g., certain
	// collective operations").
	if ll > be/3 {
		t.Fatalf("low-latency RTT %v vs best-effort %v, want >3x improvement", ll, be)
	}
	// And the absolute number should approach the uncontended RTT
	// (2 ms propagation + serialization + protocol).
	if ll > 20*time.Millisecond {
		t.Fatalf("low-latency RTT %v, want near-propagation latency", ll)
	}
}
