package diffserv

import (
	"testing"
	"time"

	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

func fluidKey(srcPort netsim.Port) netsim.FlowKey {
	return netsim.FlowKey{Src: 1, Dst: 2, SrcPort: srcPort, DstPort: 9000, Proto: netsim.ProtoUDP}
}

func TestFilterFluidMarksWithoutPolicer(t *testing.T) {
	k := sim.New(1)
	c := NewClassifier(k)
	c.AddRule(&Rule{Match: Match{}, Mark: netsim.DSCPEF})
	out := c.FilterFluid(1, fluidKey(40001),
		[]netsim.FluidComponent{{Rate: 1000, DSCP: netsim.DSCPBestEffort}})
	if len(out) != 1 || out[0].DSCP != netsim.DSCPEF || out[0].Rate != 1000 {
		t.Fatalf("marked components = %+v, want one EF at 1000", out)
	}
}

func TestFilterFluidPolicesSteadyRate(t *testing.T) {
	// 4 Mb/s offered against a 1 Mb/s profile: the conforming quarter
	// is marked EF, and the exceed action decides the rest's fate.
	k := sim.New(1)
	for _, tc := range []struct {
		action ExceedAction
		want   int
	}{
		{ExceedDrop, 1},
		{ExceedRemark, 2},
	} {
		c := NewClassifier(k)
		tb := NewTokenBucket(k, 1*units.Mbps, 1500)
		c.AddRule(&Rule{Match: Match{}, Mark: netsim.DSCPEF, Police: tb, Exceed: tc.action})
		out := c.FilterFluid(1, fluidKey(40001),
			[]netsim.FluidComponent{{Rate: 4_000_000 / 8, DSCP: netsim.DSCPBestEffort}})
		if len(out) != tc.want {
			t.Fatalf("action %v: %d components, want %d (%+v)", tc.action, len(out), tc.want, out)
		}
		if out[0].DSCP != netsim.DSCPEF || out[0].Rate != 1_000_000/8 {
			t.Fatalf("action %v: conforming component %+v, want EF at 125000 B/s", tc.action, out[0])
		}
		if tc.action == ExceedRemark {
			if out[1].DSCP != netsim.DSCPBestEffort || out[1].Rate != 3_000_000/8 {
				t.Fatalf("remarked component %+v, want BE at 375000 B/s", out[1])
			}
		}
	}
}

func TestFilterFluidAggregateBudgetShared(t *testing.T) {
	// Two flows through one aggregate policer in the same refresh
	// generation share its rate budget; a new generation resets it.
	k := sim.New(1)
	c := NewClassifier(k)
	tb := NewTokenBucket(k, 1*units.Mbps, 1500)
	c.AddRule(&Rule{Match: Match{}, Mark: netsim.DSCPEF, Police: tb, Exceed: ExceedDrop})
	in := []netsim.FluidComponent{{Rate: 100_000, DSCP: netsim.DSCPBestEffort}}

	first := c.FilterFluid(7, fluidKey(40001), in)
	if len(first) != 1 || first[0].Rate != 100_000 {
		t.Fatalf("first flow got %+v, want full 100000 B/s (budget 125000)", first)
	}
	second := c.FilterFluid(7, fluidKey(40002), in)
	if len(second) != 1 || second[0].Rate != 25_000 {
		t.Fatalf("second flow got %+v, want remaining 25000 B/s", second)
	}
	third := c.FilterFluid(7, fluidKey(40003), in)
	if len(third) != 0 {
		t.Fatalf("third flow got %+v, want empty (budget exhausted)", third)
	}
	reset := c.FilterFluid(8, fluidKey(40004), in)
	if len(reset) != 1 || reset[0].Rate != 100_000 {
		t.Fatalf("new generation got %+v, want budget reset", reset)
	}
}

func TestPrioSchedulerBandOccupancy(t *testing.T) {
	s := NewPrioScheduler(10_000, 20_000)
	if !s.Expedited(netsim.DSCPEF) || s.Expedited(netsim.DSCPBestEffort) {
		t.Fatal("Expedited mapping wrong")
	}
	s.Enqueue(&netsim.Packet{DSCP: netsim.DSCPEF, Size: 500})
	s.Enqueue(&netsim.Packet{DSCP: netsim.DSCPBestEffort, Size: 700})
	if b, capacity := s.BandOccupancy(true); b != 500 || capacity != 10_000 {
		t.Fatalf("EF band = (%v, %v), want (500, 10000)", b, capacity)
	}
	if b, capacity := s.BandOccupancy(false); b != 700 || capacity != 20_000 {
		t.Fatalf("BE band = (%v, %v), want (700, 20000)", b, capacity)
	}
}

// TestFluidThroughEFReservation runs fluid end to end through a
// DiffServ edge: a policed EF reservation carries the conforming share
// at strict priority while the excess is dropped at the edge.
func TestFluidThroughEFReservation(t *testing.T) {
	k := sim.New(1)
	n := netsim.New(k)
	src := n.AddNode("src")
	edge := n.AddNode("edge")
	dst := n.AddNode("dst")
	n.Connect(src, edge, 10*units.Mbps, 0)
	le := n.Connect(edge, dst, 10*units.Mbps, 0)
	n.ComputeRoutes()

	// Edge ingress: police the flow to 2 Mb/s EF, drop the excess.
	cl := NewClassifier(k)
	tb := NewTokenBucket(k, 2*units.Mbps, 1500)
	cl.AddRule(&Rule{Match: Match{}, Mark: netsim.DSCPEF, Police: tb, Exceed: ExceedDrop})
	for _, ifc := range edge.Ifaces() {
		if ifc.Link() != le {
			ifc.AddIngress(cl) // classify where the flow enters edge
		}
	}
	// Strict-priority scheduler on the edge→dst egress.
	le.IfaceOn(edge).SetQueue(NewPrioScheduler(48*units.KB, 48*units.KB))

	f := n.NewFluidFlow("bg", src, dst, 9000, 8*units.Mbps, 1000)
	f.Start()
	if err := k.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got, want := f.DeliveredRate(), 2*units.Mbps; got != want {
		t.Fatalf("delivered rate %v, want policed %v", got, want)
	}
	st := le.IfaceOn(edge).FluidStats()
	if st.Rate != 2*units.Mbps {
		t.Fatalf("egress fluid rate %v, want 2 Mb/s EF", st.Rate)
	}
	if st.LossBytes != 0 {
		t.Fatalf("EF lane lost %v bytes, want 0 (policed upstream)", st.LossBytes)
	}
}
