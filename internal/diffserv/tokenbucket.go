// Package diffserv implements the Differentiated Services mechanisms
// the paper's testbed configured on its Cisco 7500 routers with MQC:
//
//   - packet classifiers on router interfaces that determine the type
//     of service from the packet header (the flow 5-tuple),
//   - token-bucket policers/markers on the ingress ports of edge
//     routers, and
//   - strict priority queueing on egress ports, so that all packets
//     associated with reservations are sent before any other packets.
//
// Classifiers plug into netsim as ingress filters; the priority
// scheduler plugs in as an egress queue.
package diffserv

import (
	"fmt"
	"time"

	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// TokenBucket is a classic token-bucket rate limiter. Tokens are
// denominated in bytes and accrue continuously at Rate up to Depth;
// a packet of n bytes conforms if n tokens are available.
//
// The paper's configuration rule (§4.3) sets
//
//	depth = bandwidth × delay
//
// with the testbed's ~2 ms delay suggesting bandwidth/62, relaxed in
// practice to bandwidth/40 ("normal") to allow for larger bursts, and
// bandwidth/4 ("large") in the burstiness study of §5.4.
type TokenBucket struct {
	k      *sim.Kernel
	rate   units.BitRate
	depth  units.ByteSize
	tokens float64 // bytes
	last   time.Duration

	conformPkts, exceedPkts   uint64
	conformBytes, exceedBytes int64
}

// NewTokenBucket returns a bucket that starts full.
func NewTokenBucket(k *sim.Kernel, rate units.BitRate, depth units.ByteSize) *TokenBucket {
	if rate < 0 || depth <= 0 {
		panic(fmt.Sprintf("diffserv: invalid token bucket rate=%v depth=%v", rate, depth))
	}
	return &TokenBucket{k: k, rate: rate, depth: depth, tokens: float64(depth), last: k.Now()}
}

// refill accrues tokens for the time elapsed since the last update.
func (tb *TokenBucket) refill() {
	now := tb.k.Now()
	if now > tb.last {
		tb.tokens += float64(tb.rate) * (now - tb.last).Seconds() / 8
		if tb.tokens > float64(tb.depth) {
			tb.tokens = float64(tb.depth)
		}
		tb.last = now
	}
}

// Conform consumes n bytes of tokens if available and reports whether
// the packet conforms to the profile.
func (tb *TokenBucket) Conform(n units.ByteSize) bool {
	tb.refill()
	if float64(n) <= tb.tokens {
		tb.tokens -= float64(n)
		tb.conformPkts++
		tb.conformBytes += int64(n)
		return true
	}
	tb.exceedPkts++
	tb.exceedBytes += int64(n)
	return false
}

// Tokens returns the bytes of tokens currently available.
func (tb *TokenBucket) Tokens() units.ByteSize {
	tb.refill()
	return units.ByteSize(tb.tokens)
}

// Rate returns the token fill rate.
func (tb *TokenBucket) Rate() units.BitRate { return tb.rate }

// Depth returns the bucket depth.
func (tb *TokenBucket) Depth() units.ByteSize { return tb.depth }

// SetRate changes the fill rate; accrued tokens are settled at the old
// rate first. GARA uses this to modify an active reservation in place.
func (tb *TokenBucket) SetRate(r units.BitRate) {
	if r < 0 {
		panic("diffserv: negative token bucket rate")
	}
	tb.refill()
	tb.rate = r
}

// SetDepth changes the bucket depth, clamping accrued tokens.
func (tb *TokenBucket) SetDepth(d units.ByteSize) {
	if d <= 0 {
		panic("diffserv: non-positive token bucket depth")
	}
	tb.refill()
	tb.depth = d
	if tb.tokens > float64(d) {
		tb.tokens = float64(d)
	}
}

// Stats returns cumulative conform/exceed counters.
func (tb *TokenBucket) Stats() BucketStats {
	return BucketStats{
		ConformPkts:  tb.conformPkts,
		ExceedPkts:   tb.exceedPkts,
		ConformBytes: tb.conformBytes,
		ExceedBytes:  tb.exceedBytes,
	}
}

// BucketStats holds cumulative token-bucket counters.
type BucketStats struct {
	ConformPkts  uint64
	ExceedPkts   uint64
	ConformBytes int64
	ExceedBytes  int64
}

// Bucket depth policies from the paper.
const (
	// NormalBucketDivisor gives the paper's default depth rule:
	// depth = bandwidth / 40 (in bytes once divided by 8 bits).
	NormalBucketDivisor = 40
	// LargeBucketDivisor gives the "large" bucket of §5.4:
	// depth = bandwidth / 4.
	LargeBucketDivisor = 4
	// RTTBucketDivisor is the bandwidth×delay rule for the testbed's
	// ~2 ms delay: depth = bandwidth / 62.
	RTTBucketDivisor = 62
)

// DepthForRate computes a bucket depth from a reserved rate using the
// paper's operational rule: depth in bytes is numerically
// bandwidth/divisor with bandwidth in bits per second.
//
// Note the units: §4.3 states "depth = bandwidth × delay" with depth
// in bytes, bandwidth in bits per second, and delay in seconds, and
// equates a 2 ms delay with bandwidth/62 — which only holds if the
// bits→bytes factor of 8 is *not* applied (1/62 ≈ 0.016 ≈ 2 ms × 8).
// The deployed buckets were therefore 8× larger than the physical
// bandwidth×delay product: bandwidth/40 bytes holds 200 ms of traffic
// at the reserved rate. Table 1 is only self-consistent under this
// reading (a 12.5 KB "normal" bucket for 500 Kb/s vs the 1 fps
// stream's 50 KB frames), so we reproduce it.
//
// A minimum of one 1500-byte packet is enforced so a conforming
// MTU-sized packet can always pass.
func DepthForRate(rate units.BitRate, divisor int) units.ByteSize {
	if divisor <= 0 {
		panic("diffserv: non-positive bucket divisor")
	}
	d := units.ByteSize(float64(rate) / float64(divisor))
	if d < 1500 {
		d = 1500
	}
	return d
}

// DepthForDelay computes the physically-dimensioned bandwidth × delay
// product in bytes (what §4.3's formula literally says), with the same
// one-MTU floor. It is 8× smaller than DepthForRate's operational rule
// at the equivalent divisor; see DepthForRate for the discrepancy.
func DepthForDelay(rate units.BitRate, delay time.Duration) units.ByteSize {
	d := rate.BytesIn(delay)
	if d < 1500 {
		d = 1500
	}
	return d
}
