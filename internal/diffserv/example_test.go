package diffserv_test

import (
	"fmt"

	"mpichgq/internal/diffserv"
	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// A token bucket polices a flow: the initial burst passes up to the
// bucket depth, then packets conform only at the fill rate.
func ExampleTokenBucket() {
	k := sim.New(1)
	// 400 Kb/s with the paper's normal (bandwidth/40) depth.
	depth := diffserv.DepthForRate(400*units.Kbps, diffserv.NormalBucketDivisor)
	tb := diffserv.NewTokenBucket(k, 400*units.Kbps, depth)
	fmt.Printf("depth: %v\n", depth)

	// A 50 KB frame arriving as 1 KB packets at line rate: the first
	// 10 KB (the bucket) conform, the rest are out of profile.
	conform := 0
	for i := 0; i < 50; i++ {
		if tb.Conform(1000) {
			conform++
		}
	}
	fmt.Printf("conforming packets: %d of 50\n", conform)
	// Output:
	// depth: 10.00KB
	// conforming packets: 10 of 50
}
