package diffserv

import (
	"fmt"

	"mpichgq/internal/metrics"
	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
)

// Match describes which packets a rule applies to. Nil fields are
// wildcards, so the zero Match matches everything. Edge routers
// classify "based on information in the header, such as source and
// destination addresses and ports".
type Match struct {
	Src     *netsim.Addr
	Dst     *netsim.Addr
	SrcPort *netsim.Port
	DstPort *netsim.Port
	Proto   *netsim.Proto
	DSCP    *netsim.DSCP
}

// MatchFlow returns a Match for an exact flow 5-tuple.
func MatchFlow(k netsim.FlowKey) Match {
	return Match{Src: &k.Src, Dst: &k.Dst, SrcPort: &k.SrcPort, DstPort: &k.DstPort, Proto: &k.Proto}
}

// MatchHostPair returns a Match covering all traffic of one protocol
// between two hosts regardless of ports.
func MatchHostPair(src, dst netsim.Addr, proto netsim.Proto) Match {
	return Match{Src: &src, Dst: &dst, Proto: &proto}
}

// MatchDSCP returns a Match selecting packets already carrying code
// point d (used on domain-ingress routers to police the premium
// aggregate).
func MatchDSCP(d netsim.DSCP) Match {
	return Match{DSCP: &d}
}

// Matches reports whether packet p satisfies every non-nil field.
func (m Match) Matches(p *netsim.Packet) bool {
	if m.Src != nil && *m.Src != p.Src {
		return false
	}
	if m.Dst != nil && *m.Dst != p.Dst {
		return false
	}
	if m.SrcPort != nil && *m.SrcPort != p.SrcPort {
		return false
	}
	if m.DstPort != nil && *m.DstPort != p.DstPort {
		return false
	}
	if m.Proto != nil && *m.Proto != p.Proto {
		return false
	}
	if m.DSCP != nil && *m.DSCP != p.DSCP {
		return false
	}
	return true
}

func (m Match) String() string {
	s := "match{"
	if m.Src != nil {
		s += fmt.Sprintf("src=%d ", *m.Src)
	}
	if m.Dst != nil {
		s += fmt.Sprintf("dst=%d ", *m.Dst)
	}
	if m.SrcPort != nil {
		s += fmt.Sprintf("sport=%d ", *m.SrcPort)
	}
	if m.DstPort != nil {
		s += fmt.Sprintf("dport=%d ", *m.DstPort)
	}
	if m.Proto != nil {
		s += fmt.Sprintf("proto=%v ", *m.Proto)
	}
	if m.DSCP != nil {
		s += fmt.Sprintf("dscp=%v ", *m.DSCP)
	}
	return s + "}"
}

// ExceedAction says what a policer does with out-of-profile packets.
type ExceedAction uint8

const (
	// ExceedDrop discards out-of-profile packets (policing).
	ExceedDrop ExceedAction = iota
	// ExceedRemark demotes out-of-profile packets to best effort
	// instead of dropping them.
	ExceedRemark
)

// Rule classifies matching packets, marks them with a code point, and
// optionally polices them against a token bucket.
type Rule struct {
	Match Match
	// Mark is stamped on conforming packets.
	Mark netsim.DSCP
	// Police, if non-nil, is consulted per packet; out-of-profile
	// packets get the Exceed action.
	Police *TokenBucket
	Exceed ExceedAction

	matchedPkts uint64
	droppedPkts uint64
	remarked    uint64

	// Fluid policing state: the conform budget in bytes/s left for
	// fluid aggregates in the current solver refresh (reset when the
	// generation changes, so concurrent fluid flows share one bucket
	// rate collectively).
	fluidGen    uint64
	fluidBudget float64

	// Metric handles, shared per DSCP class across rules; attached by
	// Classifier.AddRule/InsertRule (registry dedup makes every rule
	// marking the same class share one series).
	markLabel string
	mConform  *metrics.Counter
	mExceed   *metrics.Counter
	mDropped  *metrics.Counter
	mRemarked *metrics.Counter
	rec       *metrics.Recorder
}

// RuleStats holds cumulative per-rule counters.
type RuleStats struct {
	MatchedPkts  uint64
	DroppedPkts  uint64
	RemarkedPkts uint64
}

// Stats returns the rule's cumulative counters.
func (r *Rule) Stats() RuleStats {
	return RuleStats{MatchedPkts: r.matchedPkts, DroppedPkts: r.droppedPkts, RemarkedPkts: r.remarked}
}

// Classifier is an ordered rule list applied at an interface ingress
// (a netsim.IngressFilter). The first matching rule wins; packets
// matching no rule pass through unchanged.
type Classifier struct {
	k     *sim.Kernel
	rules []*Rule
}

// NewClassifier returns an empty classifier.
func NewClassifier(k *sim.Kernel) *Classifier { return &Classifier{k: k} }

// AddRule appends a rule (lowest precedence so far) and returns it so
// the caller can inspect stats or remove it later.
func (c *Classifier) AddRule(r *Rule) *Rule {
	c.attachMetrics(r)
	c.rules = append(c.rules, r)
	return r
}

// InsertRule places a rule at the front (highest precedence).
func (c *Classifier) InsertRule(r *Rule) *Rule {
	c.attachMetrics(r)
	c.rules = append([]*Rule{r}, c.rules...)
	return r
}

// attachMetrics resolves the rule's per-DSCP metric handles.
func (c *Classifier) attachMetrics(r *Rule) {
	reg := c.k.Metrics()
	r.markLabel = r.Mark.String()
	r.rec = reg.Events()
	r.mConform = reg.Counter("diffserv_conform_packets_total",
		"policed packets within the token-bucket profile", "dscp", r.markLabel)
	r.mExceed = reg.Counter("diffserv_exceed_packets_total",
		"policed packets outside the token-bucket profile", "dscp", r.markLabel)
	r.mDropped = reg.Counter("diffserv_police_drops_total",
		"out-of-profile packets dropped by the policer", "dscp", r.markLabel)
	r.mRemarked = reg.Counter("diffserv_remarked_packets_total",
		"out-of-profile packets demoted to best effort", "dscp", r.markLabel)
}

// RemoveRule deletes r from the rule list; it reports whether r was
// present.
func (c *Classifier) RemoveRule(r *Rule) bool {
	for i, x := range c.rules {
		if x == r {
			c.rules = append(c.rules[:i], c.rules[i+1:]...)
			return true
		}
	}
	return false
}

// Rules returns the current rule list in precedence order.
func (c *Classifier) Rules() []*Rule { return c.rules }

// Filter implements netsim.IngressFilter: classify, mark, police.
func (c *Classifier) Filter(p *netsim.Packet) *netsim.Packet {
	for _, r := range c.rules {
		if !r.Match.Matches(p) {
			continue
		}
		r.matchedPkts++
		if r.Police != nil {
			if !r.Police.Conform(p.Size) {
				r.mExceed.Inc()
				r.rec.Emit(metrics.EvTokenBucketExceed, r.markLabel,
					int64(p.Size), int64(r.Exceed), 0)
				switch r.Exceed {
				case ExceedDrop:
					r.droppedPkts++
					r.mDropped.Inc()
					return nil
				case ExceedRemark:
					r.remarked++
					r.mRemarked.Inc()
					p.DSCP = netsim.DSCPBestEffort
					return p
				}
			}
			r.mConform.Inc()
		}
		p.DSCP = r.Mark
		return p
	}
	return p
}

// FilterFluid implements netsim.FluidFilter: classify, mark, and
// police a fluid flow's rate components. Policing acts on the steady
// rate — the conforming share is min(rate, bucket rate), with bucket
// *depth* (burst tolerance) irrelevant at steady state — and the
// exceed action drops or remarks the excess rate exactly as it would
// excess packets. Rules police fluid collectively within one solver
// refresh: the first flows through a shared aggregate policer consume
// its rate budget in deterministic flow order.
func (c *Classifier) FilterFluid(gen uint64, key netsim.FlowKey, comps []netsim.FluidComponent) []netsim.FluidComponent {
	out := make([]netsim.FluidComponent, 0, len(comps)+1)
	for _, comp := range comps {
		probe := netsim.Packet{
			Src:     key.Src,
			Dst:     key.Dst,
			SrcPort: key.SrcPort,
			DstPort: key.DstPort,
			Proto:   key.Proto,
			DSCP:    comp.DSCP,
		}
		var rule *Rule
		for _, r := range c.rules {
			if r.Match.Matches(&probe) {
				rule = r
				break
			}
		}
		if rule == nil {
			out = append(out, comp)
			continue
		}
		out = rule.applyFluid(gen, comp, out)
	}
	return out
}

// applyFluid applies one rule to one fluid component, appending the
// surviving components to out.
func (r *Rule) applyFluid(gen uint64, comp netsim.FluidComponent, out []netsim.FluidComponent) []netsim.FluidComponent {
	if r.Police == nil {
		comp.DSCP = r.Mark
		out = append(out, comp)
		return out
	}
	if r.fluidGen != gen {
		r.fluidGen = gen
		r.fluidBudget = float64(r.Police.Rate()) / 8
	}
	conform := comp.Rate
	if conform > r.fluidBudget {
		conform = r.fluidBudget
	}
	r.fluidBudget -= conform
	if conform > 0 {
		out = append(out, netsim.FluidComponent{Rate: conform, DSCP: r.Mark})
	}
	if excess := comp.Rate - conform; excess > 0 && r.Exceed == ExceedRemark {
		out = append(out, netsim.FluidComponent{Rate: excess, DSCP: netsim.DSCPBestEffort})
	}
	return out
}
