package diffserv

import (
	"fmt"

	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// Domain is the configuration surface of one Differentiated Services
// domain: it owns the classifier attached to each configured interface
// and provides the operations GARA's network resource manager performs
// — enabling EF priority queueing on egress ports and installing,
// modifying, and removing per-flow token-bucket reservations on edge
// ingress ports.
type Domain struct {
	k           *sim.Kernel
	classifiers map[*netsim.Iface]*Classifier
	efEnabled   map[*netsim.Iface]bool
}

// NewDomain returns an empty domain on kernel k.
func NewDomain(k *sim.Kernel) *Domain {
	return &Domain{
		k:           k,
		classifiers: make(map[*netsim.Iface]*Classifier),
		efEnabled:   make(map[*netsim.Iface]bool),
	}
}

// Classifier returns the classifier attached to iface's ingress,
// creating and attaching one on first use.
func (d *Domain) Classifier(ifc *netsim.Iface) *Classifier {
	c := d.classifiers[ifc]
	if c == nil {
		c = NewClassifier(d.k)
		ifc.AddIngress(c)
		d.classifiers[ifc] = c
	}
	return c
}

// EnableEF replaces iface's egress queue with a strict-priority
// scheduler. Idempotent.
func (d *Domain) EnableEF(ifc *netsim.Iface, efCap, beCap units.ByteSize) {
	if d.efEnabled[ifc] {
		return
	}
	s := NewPrioScheduler(efCap, beCap)
	ifc.SetQueue(s)
	d.efEnabled[ifc] = true
	label := ifc.String()
	reg := d.k.Metrics()
	reg.GaugeFunc("diffserv_ef_queue_packets",
		"packets queued in the expedited band",
		func() float64 { return float64(s.EFLen()) }, "iface", label)
	reg.GaugeFunc("diffserv_be_queue_packets",
		"packets queued in the best-effort band",
		func() float64 { return float64(s.BELen()) }, "iface", label)
}

// EnableEFAll enables EF priority queueing on every interface of every
// given node, with each band sized to the interface's previous default
// capacity.
func (d *Domain) EnableEFAll(nodes ...*netsim.Node) {
	for _, nd := range nodes {
		for _, ifc := range nd.Ifaces() {
			d.EnableEF(ifc, netsim.DefaultQueueCap, netsim.DefaultQueueCap)
		}
	}
}

// PoliceAggregate installs the paper's domain-ingress protection: "a
// token bucket mechanism ... is also used on the ingress router of a
// domain to police the premium aggregate". Packets already marked EF
// arriving at ifc are policed collectively; out-of-profile aggregate
// traffic is dropped (a neighbouring domain sending more premium
// traffic than agreed must not starve local reservations). The rule
// is appended at lowest precedence so per-flow rules classify first.
func (d *Domain) PoliceAggregate(ifc *netsim.Iface, rate units.BitRate, depth units.ByteSize) *FlowReservation {
	tb := NewTokenBucket(d.k, rate, depth)
	rule := &Rule{Match: MatchDSCP(netsim.DSCPEF), Mark: netsim.DSCPEF, Police: tb, Exceed: ExceedDrop}
	d.Classifier(ifc).AddRule(rule)
	return &FlowReservation{domain: d, ifc: ifc, rule: rule, tb: tb, active: true}
}

// FlowReservation is an installed premium reservation: a
// classify+mark+police rule on one ingress interface.
type FlowReservation struct {
	domain *Domain
	ifc    *netsim.Iface
	rule   *Rule
	tb     *TokenBucket
	active bool
}

// ReserveFlow installs a premium (EF) reservation for traffic matching
// m arriving at edge ingress ifc: conforming packets are marked EF,
// out-of-profile packets get the exceed action. The reservation is
// inserted at highest precedence so it shadows broader rules.
func (d *Domain) ReserveFlow(ifc *netsim.Iface, m Match, rate units.BitRate, depth units.ByteSize, exceed ExceedAction) *FlowReservation {
	tb := NewTokenBucket(d.k, rate, depth)
	rule := &Rule{Match: m, Mark: netsim.DSCPEF, Police: tb, Exceed: exceed}
	d.Classifier(ifc).InsertRule(rule)
	return &FlowReservation{domain: d, ifc: ifc, rule: rule, tb: tb, active: true}
}

// SetRate changes the reservation's policed rate in place.
func (fr *FlowReservation) SetRate(r units.BitRate) { fr.tb.SetRate(r) }

// SetDepth changes the reservation's token bucket depth in place.
func (fr *FlowReservation) SetDepth(depth units.ByteSize) { fr.tb.SetDepth(depth) }

// Rate returns the reservation's current policed rate.
func (fr *FlowReservation) Rate() units.BitRate { return fr.tb.Rate() }

// Depth returns the reservation's current bucket depth.
func (fr *FlowReservation) Depth() units.ByteSize { return fr.tb.Depth() }

// Bucket returns the underlying token bucket (for stats).
func (fr *FlowReservation) Bucket() *TokenBucket { return fr.tb }

// Rule returns the installed classifier rule (for stats).
func (fr *FlowReservation) Rule() *Rule { return fr.rule }

// Active reports whether the reservation is still installed.
func (fr *FlowReservation) Active() bool { return fr.active }

// Remove uninstalls the reservation. Idempotent.
func (fr *FlowReservation) Remove() {
	if !fr.active {
		return
	}
	fr.domain.classifiers[fr.ifc].RemoveRule(fr.rule)
	fr.active = false
}

func (fr *FlowReservation) String() string {
	return fmt.Sprintf("reservation{%v rate=%v depth=%v}", fr.rule.Match, fr.tb.Rate(), fr.tb.Depth())
}
