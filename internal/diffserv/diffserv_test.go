package diffserv

import (
	"testing"
	"testing/quick"
	"time"

	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

func TestTokenBucketStartsFull(t *testing.T) {
	k := sim.New(1)
	tb := NewTokenBucket(k, units.Mbps, 10000)
	if tb.Tokens() != 10000 {
		t.Fatalf("tokens = %d, want 10000", tb.Tokens())
	}
	if !tb.Conform(10000) {
		t.Fatal("full bucket should admit depth-sized packet")
	}
	if tb.Conform(1) {
		t.Fatal("empty bucket should reject")
	}
}

func TestTokenBucketRefill(t *testing.T) {
	k := sim.New(1)
	// 8 Mb/s = 1 MB/s = 1000 bytes/ms.
	tb := NewTokenBucket(k, 8*units.Mbps, 5000)
	tb.Conform(5000) // drain
	k.After(2*time.Millisecond, func() {
		if got := tb.Tokens(); got != 2000 {
			t.Errorf("tokens after 2ms = %d, want 2000", got)
		}
	})
	k.After(time.Hour, func() {
		if got := tb.Tokens(); got != 5000 {
			t.Errorf("tokens capped at %d, want 5000 (depth)", got)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTokenBucketLongRunRate(t *testing.T) {
	// Offered load 2x the token rate: over a long window, conforming
	// bytes must approximate rate*time.
	k := sim.New(1)
	rate := 4 * units.Mbps // 500 bytes/ms
	tb := NewTokenBucket(k, rate, 4000)
	pkt := units.ByteSize(1000)
	k.Spawn("src", func(ctx *sim.Ctx) {
		for ctx.Now() < 10*time.Second {
			tb.Conform(pkt)
			ctx.Sleep(time.Millisecond) // offered: 1000 bytes/ms
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	st := tb.Stats()
	want := int64(rate.BytesIn(10 * time.Second))
	got := st.ConformBytes
	if got < want*95/100 || got > want*105/100+4000 {
		t.Fatalf("conforming bytes = %d, want ~%d", got, want)
	}
	if st.ExceedPkts == 0 {
		t.Fatal("expected out-of-profile packets at 2x offered load")
	}
}

// Conservation: conform+exceed counters account for every offered
// packet, and tokens never exceed depth or go negative.
func TestTokenBucketConservationProperty(t *testing.T) {
	f := func(seed int64, depthKB uint8, steps uint8) bool {
		k := sim.New(seed)
		depth := units.ByteSize(depthKB%32+1) * units.KB
		tb := NewTokenBucket(k, units.Mbps, depth)
		rng := sim.NewRNG(seed)
		offered := uint64(0)
		ok := true
		k.Spawn("p", func(ctx *sim.Ctx) {
			for i := 0; i < int(steps); i++ {
				ctx.Sleep(time.Duration(rng.Intn(5000)) * time.Microsecond)
				tb.Conform(units.ByteSize(rng.Intn(3000) + 1))
				offered++
				tok := tb.Tokens()
				if tok < 0 || tok > depth {
					ok = false
				}
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		st := tb.Stats()
		return ok && st.ConformPkts+st.ExceedPkts == offered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenBucketSetRateSettlesFirst(t *testing.T) {
	k := sim.New(1)
	tb := NewTokenBucket(k, 8*units.Mbps, 10000)
	tb.Conform(10000)
	k.After(time.Millisecond, func() {
		// 1 ms at 8 Mb/s = 1000 bytes accrued, then rate drops to 0.
		tb.SetRate(0)
		if got := tb.Tokens(); got != 1000 {
			t.Errorf("tokens = %d, want 1000", got)
		}
	})
	k.After(time.Second, func() {
		if got := tb.Tokens(); got != 1000 {
			t.Errorf("tokens grew at zero rate: %d", got)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDepthForRate(t *testing.T) {
	// Paper's operational rule: 500 Kb/s / 40 = 12500 bytes.
	if got := DepthForRate(500*units.Kbps, NormalBucketDivisor); got != 12500 {
		t.Fatalf("DepthForRate = %d, want 12500", got)
	}
	// Floor: tiny rates still pass one MTU.
	if got := DepthForRate(10*units.Kbps, NormalBucketDivisor); got != 1500 {
		t.Fatalf("floor: got %d, want 1500", got)
	}
	// Large bucket: 400 Kb/s / 4 = 100 KB, covering the 1 fps
	// stream's 50 KB frames (Table 1).
	if got := DepthForRate(400*units.Kbps, LargeBucketDivisor); got != 100000 {
		t.Fatalf("large bucket = %d, want 100000", got)
	}
}

func TestDepthForDelay(t *testing.T) {
	// 40 Mb/s × 2 ms = 80 Kb = 10000 bytes.
	if got := DepthForDelay(40*units.Mbps, 2*time.Millisecond); got != 10000 {
		t.Fatalf("DepthForDelay = %d, want 10000", got)
	}
}

func mkPkt(src, dst netsim.Addr, sport, dport netsim.Port, proto netsim.Proto, size units.ByteSize) *netsim.Packet {
	return &netsim.Packet{Src: src, Dst: dst, SrcPort: sport, DstPort: dport, Proto: proto, Size: size}
}

func TestMatchWildcards(t *testing.T) {
	p := mkPkt(1, 2, 10, 20, netsim.ProtoTCP, 100)
	if !(Match{}).Matches(p) {
		t.Fatal("zero Match should match everything")
	}
	if !MatchFlow(p.Key()).Matches(p) {
		t.Fatal("exact flow match failed")
	}
	if !MatchHostPair(1, 2, netsim.ProtoTCP).Matches(p) {
		t.Fatal("host pair match failed")
	}
	if MatchHostPair(2, 1, netsim.ProtoTCP).Matches(p) {
		t.Fatal("reversed host pair should not match")
	}
	udp := netsim.ProtoUDP
	if (Match{Proto: &udp}).Matches(p) {
		t.Fatal("wrong proto should not match")
	}
	p.DSCP = netsim.DSCPEF
	if !MatchDSCP(netsim.DSCPEF).Matches(p) {
		t.Fatal("DSCP match failed")
	}
}

func TestClassifierFirstMatchWins(t *testing.T) {
	k := sim.New(1)
	c := NewClassifier(k)
	tcp := netsim.ProtoTCP
	c.AddRule(&Rule{Match: Match{Proto: &tcp}, Mark: netsim.DSCPEF})
	c.AddRule(&Rule{Match: Match{}, Mark: netsim.DSCPBestEffort})
	p := c.Filter(mkPkt(1, 2, 1, 2, netsim.ProtoTCP, 100))
	if p.DSCP != netsim.DSCPEF {
		t.Fatal("first rule should win")
	}
	p2 := c.Filter(mkPkt(1, 2, 1, 2, netsim.ProtoUDP, 100))
	if p2.DSCP != netsim.DSCPBestEffort {
		t.Fatal("second rule should catch UDP")
	}
}

func TestClassifierInsertRulePrecedence(t *testing.T) {
	k := sim.New(1)
	c := NewClassifier(k)
	c.AddRule(&Rule{Match: Match{}, Mark: netsim.DSCPBestEffort})
	c.InsertRule(&Rule{Match: Match{}, Mark: netsim.DSCPEF})
	p := c.Filter(mkPkt(1, 2, 1, 2, netsim.ProtoTCP, 100))
	if p.DSCP != netsim.DSCPEF {
		t.Fatal("inserted rule should take precedence")
	}
}

func TestClassifierNoMatchPassthrough(t *testing.T) {
	k := sim.New(1)
	c := NewClassifier(k)
	udp := netsim.ProtoUDP
	c.AddRule(&Rule{Match: Match{Proto: &udp}, Mark: netsim.DSCPEF})
	p := mkPkt(1, 2, 1, 2, netsim.ProtoTCP, 100)
	got := c.Filter(p)
	if got != p || got.DSCP != netsim.DSCPBestEffort {
		t.Fatal("unmatched packet should pass unchanged")
	}
}

func TestPolicingDropsExceedingPackets(t *testing.T) {
	k := sim.New(1)
	c := NewClassifier(k)
	tb := NewTokenBucket(k, 0, 2500) // no refill: only the initial burst passes
	rule := c.AddRule(&Rule{Match: Match{}, Mark: netsim.DSCPEF, Police: tb, Exceed: ExceedDrop})
	passed := 0
	for i := 0; i < 5; i++ {
		if c.Filter(mkPkt(1, 2, 1, 2, netsim.ProtoUDP, 1000)) != nil {
			passed++
		}
	}
	if passed != 2 {
		t.Fatalf("passed = %d, want 2", passed)
	}
	st := rule.Stats()
	if st.MatchedPkts != 5 || st.DroppedPkts != 3 {
		t.Fatalf("rule stats = %+v", st)
	}
}

func TestPolicingRemark(t *testing.T) {
	k := sim.New(1)
	c := NewClassifier(k)
	tb := NewTokenBucket(k, 0, 1000)
	c.AddRule(&Rule{Match: Match{}, Mark: netsim.DSCPEF, Police: tb, Exceed: ExceedRemark})
	p1 := c.Filter(mkPkt(1, 2, 1, 2, netsim.ProtoUDP, 1000))
	p2 := c.Filter(mkPkt(1, 2, 1, 2, netsim.ProtoUDP, 1000))
	if p1.DSCP != netsim.DSCPEF {
		t.Fatal("conforming packet should be marked EF")
	}
	if p2 == nil || p2.DSCP != netsim.DSCPBestEffort {
		t.Fatal("exceeding packet should be remarked, not dropped")
	}
}

func TestPrioSchedulerStrictPriority(t *testing.T) {
	s := NewPrioScheduler(units.MB, units.MB)
	be := &netsim.Packet{Size: 100, DSCP: netsim.DSCPBestEffort}
	ef := &netsim.Packet{Size: 100, DSCP: netsim.DSCPEF}
	s.Enqueue(be)
	s.Enqueue(ef)
	if s.Dequeue() != ef {
		t.Fatal("EF must dequeue before best effort")
	}
	if s.Dequeue() != be {
		t.Fatal("best effort should follow")
	}
	if s.Dequeue() != nil {
		t.Fatal("empty scheduler should return nil")
	}
}

func TestPrioSchedulerPerBandCapacity(t *testing.T) {
	s := NewPrioScheduler(150, 150)
	ef := func() *netsim.Packet { return &netsim.Packet{Size: 100, DSCP: netsim.DSCPEF} }
	be := func() *netsim.Packet { return &netsim.Packet{Size: 100, DSCP: netsim.DSCPBestEffort} }
	if !s.Enqueue(ef()) || s.Enqueue(ef()) {
		t.Fatal("EF band should hold exactly one 100B packet")
	}
	if !s.Enqueue(be()) || s.Enqueue(be()) {
		t.Fatal("BE band should hold exactly one 100B packet")
	}
	efD, beD := s.Drops()
	if efD != 1 || beD != 1 {
		t.Fatalf("drops = %d/%d, want 1/1", efD, beD)
	}
	if s.Len() != 2 || s.Bytes() != 200 || s.EFLen() != 1 || s.BELen() != 1 {
		t.Fatal("length accounting wrong")
	}
}

// Strict-priority invariant under random interleaving: no BE packet is
// ever returned while an EF packet is queued.
func TestPrioSchedulerInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := sim.NewRNG(seed)
		s := NewPrioScheduler(units.MB, units.MB)
		for op := 0; op < 200; op++ {
			if rng.Intn(2) == 0 {
				d := netsim.DSCPBestEffort
				if rng.Intn(2) == 0 {
					d = netsim.DSCPEF
				}
				s.Enqueue(&netsim.Packet{Size: 100, DSCP: d})
			} else {
				p := s.Dequeue()
				if p != nil && p.DSCP != netsim.DSCPEF && s.EFLen() > 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDomainEndToEndPremiumProtection(t *testing.T) {
	// a --- edge === core --- b with a 10 Mb/s bottleneck between the
	// routers. A premium UDP flow with a 5 Mb/s reservation competes
	// with a best-effort UDP blast; the premium flow must get its rate.
	k := sim.New(1)
	n := netsim.New(k)
	a, edge, core, b := n.AddNode("a"), n.AddNode("edge"), n.AddNode("core"), n.AddNode("b")
	n.Connect(a, edge, 100*units.Mbps, time.Millisecond)
	bott := n.Connect(edge, core, 10*units.Mbps, time.Millisecond)
	n.Connect(core, b, 100*units.Mbps, time.Millisecond)
	n.ComputeRoutes()

	d := NewDomain(k)
	d.EnableEF(bott.IfaceOn(edge), netsim.DefaultQueueCap, netsim.DefaultQueueCap)
	// Premium: UDP from a port 1000 -> b port 2000, 5 Mb/s.
	sport, dport := netsim.Port(1000), netsim.Port(2000)
	udp := netsim.ProtoUDP
	m := Match{Src: addrPtr(a.Addr()), Dst: addrPtr(b.Addr()), SrcPort: &sport, DstPort: &dport, Proto: &udp}
	d.ReserveFlow(n.Links()[0].IfaceOn(edge), m, 5*units.Mbps, DepthForRate(5*units.Mbps, NormalBucketDivisor), ExceedDrop)

	sa := netsim.NewUDPStack(a)
	sb := netsim.NewUDPStack(b)
	prem, _ := sa.Bind(sport)
	blast, _ := sa.Bind(0)
	sink, _ := sb.Bind(dport)
	sinkBlast, _ := sb.Bind(2001)

	// Premium sender: 4.5 Mb/s in 1000-byte datagrams.
	k.Spawn("premium", func(ctx *sim.Ctx) {
		gap := units.BitRate(4.5 * float64(units.Mbps)).TimeToSend(1000)
		for ctx.Now() < 10*time.Second {
			prem.SendTo(b.Addr(), dport, 1000, nil)
			ctx.Sleep(gap)
		}
	})
	// Blaster: 50 Mb/s best effort.
	k.Spawn("blast", func(ctx *sim.Ctx) {
		gap := (50 * units.Mbps).TimeToSend(1000)
		for ctx.Now() < 10*time.Second {
			blast.SendTo(b.Addr(), 2001, 1000, nil)
			ctx.Sleep(gap)
		}
	})
	premBytes, blastBytes := int64(0), int64(0)
	k.Spawn("sink", func(ctx *sim.Ctx) {
		for {
			dg, err := sink.Recv(ctx)
			if err != nil {
				return
			}
			premBytes += int64(dg.Len)
		}
	})
	k.Spawn("sinkBlast", func(ctx *sim.Ctx) {
		for {
			dg, err := sinkBlast.Recv(ctx)
			if err != nil {
				return
			}
			blastBytes += int64(dg.Len)
		}
	})
	if err := k.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	premRate := units.RateOf(units.ByteSize(premBytes), 10*time.Second)
	blastRate := units.RateOf(units.ByteSize(blastBytes), 10*time.Second)
	if premRate < 4.2*units.Mbps {
		t.Fatalf("premium flow starved: %v", premRate)
	}
	// Best effort gets roughly the leftover capacity, far below its
	// 50 Mb/s offered load.
	if blastRate > 7*units.Mbps {
		t.Fatalf("best effort got %v, expected <7Mb/s leftover", blastRate)
	}
}

func TestFlowReservationModifyRemove(t *testing.T) {
	k := sim.New(1)
	n := netsim.New(k)
	a, b := n.AddNode("a"), n.AddNode("b")
	l := n.Connect(a, b, 10*units.Mbps, 0)
	n.ComputeRoutes()
	d := NewDomain(k)
	ifc := l.IfaceOn(b)
	fr := d.ReserveFlow(ifc, Match{}, units.Mbps, 1500, ExceedDrop)
	if !fr.Active() || fr.Rate() != units.Mbps {
		t.Fatal("reservation should be active at 1 Mb/s")
	}
	fr.SetRate(2 * units.Mbps)
	fr.SetDepth(3000)
	if fr.Rate() != 2*units.Mbps || fr.Depth() != 3000 {
		t.Fatal("modify did not stick")
	}
	if len(d.Classifier(ifc).Rules()) != 1 {
		t.Fatal("rule not installed")
	}
	fr.Remove()
	fr.Remove() // idempotent
	if fr.Active() || len(d.Classifier(ifc).Rules()) != 0 {
		t.Fatal("rule not removed")
	}
}

func TestEnableEFIdempotent(t *testing.T) {
	k := sim.New(1)
	n := netsim.New(k)
	a, b := n.AddNode("a"), n.AddNode("b")
	l := n.Connect(a, b, units.Mbps, 0)
	d := NewDomain(k)
	d.EnableEF(l.IfaceOn(a), units.MB, units.MB)
	q := l.IfaceOn(a).Queue()
	d.EnableEF(l.IfaceOn(a), units.MB, units.MB)
	if l.IfaceOn(a).Queue() != q {
		t.Fatal("second EnableEF replaced the queue")
	}
}

func addrPtr(a netsim.Addr) *netsim.Addr { return &a }

func TestPoliceAggregateAtDomainIngress(t *testing.T) {
	// upstream --- border === inner --- dst: the upstream domain
	// pre-marks EF beyond its agreed aggregate; the border router's
	// domain-ingress policer must clamp the aggregate to the agreed
	// rate while passing conforming traffic.
	k := sim.New(1)
	n := netsim.New(k)
	up, border, inner, dst := n.AddNode("up"), n.AddNode("border"), n.AddNode("inner"), n.AddNode("dst")
	n.Connect(up, border, 100*units.Mbps, time.Millisecond)
	n.Connect(border, inner, 100*units.Mbps, time.Millisecond)
	n.Connect(inner, dst, 100*units.Mbps, time.Millisecond)
	n.ComputeRoutes()
	d := NewDomain(k)
	d.EnableEFAll(border, inner)
	// Agreed premium aggregate from upstream: 5 Mb/s.
	agg := d.PoliceAggregate(n.Links()[0].IfaceOn(border), 5*units.Mbps, DepthForRate(5*units.Mbps, NormalBucketDivisor))

	src := up.UDPStack()
	sink := dst.UDPStack()
	sock, _ := src.Bind(0)
	sock.SetDSCP(netsim.DSCPEF) // upstream pre-marks everything EF
	recvSock, _ := sink.Bind(700)
	var rx int64
	k.Spawn("sink", func(ctx *sim.Ctx) {
		for {
			dg, err := recvSock.Recv(ctx)
			if err != nil {
				return
			}
			rx += int64(dg.Len)
		}
	})
	// Offer 20 Mb/s of "premium" from upstream for 10 s.
	k.Spawn("src", func(ctx *sim.Ctx) {
		gap := (20 * units.Mbps).TimeToSend(1028)
		for ctx.Now() < 10*time.Second {
			sock.SendTo(dst.Addr(), 700, 1000, nil)
			ctx.Sleep(gap)
		}
	})
	if err := k.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	rate := units.RateOf(units.ByteSize(rx), 10*time.Second)
	if rate > 6*units.Mbps {
		t.Fatalf("aggregate not policed: %v passed, agreed 5 Mb/s", rate)
	}
	if rate < 4*units.Mbps {
		t.Fatalf("conforming aggregate over-policed: %v", rate)
	}
	if agg.Bucket().Stats().ExceedPkts == 0 {
		t.Fatal("expected out-of-profile aggregate drops")
	}
}
