package diffserv

import (
	"mpichgq/internal/netsim"
	"mpichgq/internal/units"
)

// PrioScheduler is a two-band strict-priority egress queue: packets
// marked EF go to the expedited band and are always transmitted before
// any best-effort packet ("all packets in the expedited router queue
// are sent before any other packets are sent"). When the expedited
// band is empty, best-effort traffic uses the entire link.
//
// Each band is drop-tail with its own byte capacity. Starvation of
// best effort is prevented not here but by admission control: the
// bandwidth broker only admits EF reservations up to a fraction of
// link capacity.
type PrioScheduler struct {
	ef netsim.DropTail
	be netsim.DropTail

	efDrops, beDrops uint64
}

// NewPrioScheduler returns a scheduler with the given per-band byte
// capacities.
func NewPrioScheduler(efCap, beCap units.ByteSize) *PrioScheduler {
	return &PrioScheduler{ef: *netsim.NewDropTail(efCap), be: *netsim.NewDropTail(beCap)}
}

// Enqueue implements netsim.Queue.
func (s *PrioScheduler) Enqueue(p *netsim.Packet) bool {
	if p.DSCP == netsim.DSCPEF {
		if !s.ef.Enqueue(p) {
			s.efDrops++
			return false
		}
		return true
	}
	if !s.be.Enqueue(p) {
		s.beDrops++
		return false
	}
	return true
}

// Dequeue implements netsim.Queue: strict priority, EF first.
func (s *PrioScheduler) Dequeue() *netsim.Packet {
	if p := s.ef.Dequeue(); p != nil {
		return p
	}
	return s.be.Dequeue()
}

// Len implements netsim.Queue.
func (s *PrioScheduler) Len() int { return s.ef.Len() + s.be.Len() }

// Bytes implements netsim.Queue.
func (s *PrioScheduler) Bytes() units.ByteSize { return s.ef.Bytes() + s.be.Bytes() }

// Expedited implements netsim.ExpeditedQueue: EF maps to the
// expedited band, everything else to best effort.
func (s *PrioScheduler) Expedited(d netsim.DSCP) bool { return d == netsim.DSCPEF }

// BandOccupancy implements netsim.ExpeditedQueue, reporting one band's
// queued bytes and byte capacity. The fluid solver uses it to lane
// fluid aggregates and to split buffer space between fluid backlog and
// packets.
func (s *PrioScheduler) BandOccupancy(expedited bool) (bytes, capacity units.ByteSize) {
	if expedited {
		return s.ef.Bytes(), s.ef.Cap()
	}
	return s.be.Bytes(), s.be.Cap()
}

// EFLen returns the number of packets queued in the expedited band.
func (s *PrioScheduler) EFLen() int { return s.ef.Len() }

// BELen returns the number of packets queued in the best-effort band.
func (s *PrioScheduler) BELen() int { return s.be.Len() }

// Drops returns cumulative per-band drop counts.
func (s *PrioScheduler) Drops() (ef, be uint64) { return s.efDrops, s.beDrops }
