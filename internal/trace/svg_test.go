package trace

import (
	"strings"
	"testing"
	"time"
)

func linePlot() Plot {
	return Plot{
		Title:  "Bandwidth",
		XLabel: "time (s)",
		YLabel: "Kb/s",
		Series: []Series{
			{Name: "flow", Points: []Point{
				{T: 0, V: 100}, {T: time.Second, V: 300}, {T: 2 * time.Second, V: 200},
			}},
		},
	}
}

func TestPlotSVGWellFormed(t *testing.T) {
	out := linePlot().SVG()
	for _, want := range []string{"<svg", "</svg>", "<path", "Bandwidth", "Kb/s", "time (s)", "flow"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<svg") != 1 || strings.Count(out, "</svg>") != 1 {
		t.Fatal("SVG not a single document")
	}
}

func TestPlotScatterUsesCircles(t *testing.T) {
	p := linePlot()
	p.Scatter = true
	out := p.SVG()
	if !strings.Contains(out, "<circle") || strings.Contains(out, "<path") {
		t.Fatal("scatter plot should use circles, not paths")
	}
}

func TestPlotEmptySeries(t *testing.T) {
	p := Plot{Title: "empty"}
	out := p.SVG()
	if !strings.Contains(out, "</svg>") {
		t.Fatal("empty plot should still render")
	}
}

func TestPlotEscapesMarkup(t *testing.T) {
	p := linePlot()
	p.Title = "a<b & c>d"
	out := p.SVG()
	if strings.Contains(out, "a<b") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(out, "a&lt;b &amp; c&gt;d") {
		t.Fatal("escaped title missing")
	}
}

func TestXYSeries(t *testing.T) {
	s := XYSeries("curve", []float64{1, 2, 3}, []float64{10, 20})
	if len(s.Points) != 2 {
		t.Fatalf("points = %d, want 2 (truncated to shorter slice)", len(s.Points))
	}
	if s.Points[1].T != 2*time.Second || s.Points[1].V != 20 {
		t.Fatalf("points = %v", s.Points)
	}
}

func TestPlotMultiSeriesDistinctColors(t *testing.T) {
	p := Plot{Series: []Series{
		{Name: "a", Points: []Point{{T: 0, V: 1}, {T: time.Second, V: 2}}},
		{Name: "b", Points: []Point{{T: 0, V: 2}, {T: time.Second, V: 1}}},
	}}
	out := p.SVG()
	if !strings.Contains(out, plotColors[0]) || !strings.Contains(out, plotColors[1]) {
		t.Fatal("series should get distinct colors")
	}
}
