package trace

import (
	"strings"
	"testing"
	"time"

	"mpichgq/internal/units"
)

func TestBandwidthTraceBuckets(t *testing.T) {
	tr := NewBandwidthTrace(time.Second)
	// 125000 bytes in second 0 => 1000 Kb/s.
	tr.Add(200*time.Millisecond, 125000)
	// Nothing in second 1; 250000 bytes in second 2 => 2000 Kb/s.
	tr.Add(2500*time.Millisecond, 250000)
	s := tr.Series("x")
	if len(s.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(s.Points))
	}
	if s.Points[0].V != 1000 || s.Points[1].V != 0 || s.Points[2].V != 2000 {
		t.Fatalf("series = %v", s.Points)
	}
	if s.Points[0].T != 500*time.Millisecond {
		t.Fatalf("midpoint = %v, want 500ms", s.Points[0].T)
	}
	if tr.Total() != 375000 {
		t.Fatalf("total = %d", tr.Total())
	}
}

func TestBandwidthTraceMeanRate(t *testing.T) {
	tr := NewBandwidthTrace(time.Second)
	for i := 0; i < 10; i++ {
		tr.Add(time.Duration(i)*time.Second+time.Millisecond, 125000) // 1 Mb/s each second
	}
	got := tr.MeanRate(0, 10*time.Second)
	if got < 999*units.Kbps || got > 1001*units.Kbps {
		t.Fatalf("mean rate = %v, want ~1Mb/s", got)
	}
	// Sub-window.
	got = tr.MeanRate(2*time.Second, 4*time.Second)
	if got < 999*units.Kbps || got > 1001*units.Kbps {
		t.Fatalf("window mean = %v, want ~1Mb/s", got)
	}
}

func TestSeriesHelpers(t *testing.T) {
	s := Series{Name: "s", Points: []Point{{T: 0, V: 1}, {T: time.Second, V: 3}, {T: 2 * time.Second, V: 2}}}
	if s.Max() != 3 {
		t.Fatalf("max = %v", s.Max())
	}
	if s.Mean() != 2 {
		t.Fatalf("mean = %v", s.Mean())
	}
	sub := s.Between(time.Second, 2*time.Second)
	if len(sub.Points) != 1 || sub.Points[0].V != 3 {
		t.Fatalf("between = %v", sub.Points)
	}
	if !strings.Contains(s.String(), "# s") {
		t.Fatal("String missing header")
	}
	if s.Min() != 1 {
		t.Fatalf("min = %v", s.Min())
	}
}

func TestSeriesMaxMinNegative(t *testing.T) {
	neg := Series{Points: []Point{{V: -5}, {V: -2}, {V: -9}}}
	if got := neg.Max(); got != -2 {
		t.Fatalf("all-negative max = %v, want -2", got)
	}
	if got := neg.Min(); got != -9 {
		t.Fatalf("all-negative min = %v, want -9", got)
	}
	var empty Series
	if empty.Max() != 0 || empty.Min() != 0 {
		t.Fatalf("empty series max/min = %v/%v, want 0/0", empty.Max(), empty.Min())
	}
}

func TestSeqTrace(t *testing.T) {
	var tr SeqTrace
	tr.Record(0, 0, 1000, false)
	tr.Record(time.Second, 1000, 1000, false)
	tr.Record(2*time.Second, 0, 1000, true)
	if tr.Retransmits() != 1 {
		t.Fatalf("retransmits = %d", tr.Retransmits())
	}
	s := tr.Series("seq")
	if s.Points[1].V != 8 { // 1000 bytes = 8 Kb
		t.Fatalf("seq Kb = %v, want 8", s.Points[1].V)
	}
	if got := len(tr.Between(500*time.Millisecond, 3*time.Second)); got != 2 {
		t.Fatalf("between = %d, want 2", got)
	}
}

func TestSeqTraceBurstStats(t *testing.T) {
	var tr SeqTrace
	// Burst of 5 packets within 10 ms, then quiet, then one packet.
	for i := 0; i < 5; i++ {
		tr.Record(time.Duration(i)*2*time.Millisecond, int64(i)*1000, 1000, false)
	}
	tr.Record(time.Second, 5000, 1000, false)
	if got := tr.BurstStats(50 * time.Millisecond); got != 5000 {
		t.Fatalf("max burst = %d, want 5000", got)
	}
	if got := tr.BurstStats(time.Microsecond); got != 1000 {
		t.Fatalf("tiny window burst = %d, want 1000", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{Title: "T", Headers: []string{"a", "bbbb"}}
	tbl.Add("xxxxx", "1")
	out := tbl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[1], "a    ") {
		t.Fatalf("header misaligned: %q", lines[1])
	}
}
