// Package trace collects the time series the paper's figures plot:
// achieved bandwidth over time (Figures 1, 8, 9) and TCP sequence
// numbers over time (Figure 7).
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mpichgq/internal/units"
)

// Point is one sample of a time series.
type Point struct {
	T time.Duration
	V float64
}

// Series is a named time series.
type Series struct {
	Name   string
	Points []Point
}

// String renders the series as "t\tv" lines, gnuplot-style.
func (s Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", s.Name)
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%.3f\t%.2f\n", p.T.Seconds(), p.V)
	}
	return b.String()
}

// Max returns the largest value in the series (0 if empty).
func (s Series) Max() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := s.Points[0].V
	for _, p := range s.Points[1:] {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// Min returns the smallest value in the series (0 if empty).
func (s Series) Min() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := s.Points[0].V
	for _, p := range s.Points[1:] {
		if p.V < m {
			m = p.V
		}
	}
	return m
}

// Mean returns the arithmetic mean of the values (0 if empty).
func (s Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// Between returns the sub-series with from <= T < to.
func (s Series) Between(from, to time.Duration) Series {
	out := Series{Name: s.Name}
	for _, p := range s.Points {
		if p.T >= from && p.T < to {
			out.Points = append(out.Points, p)
		}
	}
	return out
}

// BandwidthTrace accumulates transferred bytes into fixed-width time
// buckets and reports the per-bucket rate, the paper's standard plot.
type BandwidthTrace struct {
	bucket  time.Duration
	byIdx   map[int]int64 // bucket index -> bytes
	maxIdx  int
	total   int64
	firstAt time.Duration
	lastAt  time.Duration
	any     bool
}

// NewBandwidthTrace returns a trace with the given bucket width.
func NewBandwidthTrace(bucket time.Duration) *BandwidthTrace {
	if bucket <= 0 {
		panic("trace: non-positive bucket width")
	}
	return &BandwidthTrace{bucket: bucket, byIdx: make(map[int]int64)}
}

// Add records n bytes transferred at virtual time now.
func (t *BandwidthTrace) Add(now time.Duration, n units.ByteSize) {
	idx := int(now / t.bucket)
	t.byIdx[idx] += int64(n)
	if idx > t.maxIdx {
		t.maxIdx = idx
	}
	t.total += int64(n)
	if !t.any || now < t.firstAt {
		t.firstAt = now
	}
	if now > t.lastAt {
		t.lastAt = now
	}
	t.any = true
}

// Total returns all bytes recorded.
func (t *BandwidthTrace) Total() units.ByteSize { return units.ByteSize(t.total) }

// Series returns the per-bucket bandwidth in Kb/s, with points at
// bucket midpoints. Empty buckets up to the last sample are included
// as zeros, so stalls show as gaps in the plot, exactly like Figure 1.
func (t *BandwidthTrace) Series(name string) Series {
	s := Series{Name: name}
	if !t.any {
		return s
	}
	for i := 0; i <= t.maxIdx; i++ {
		rate := units.RateOf(units.ByteSize(t.byIdx[i]), t.bucket)
		s.Points = append(s.Points, Point{
			T: time.Duration(i)*t.bucket + t.bucket/2,
			V: rate.Kbps(),
		})
	}
	return s
}

// MeanRate returns the average rate between from and to.
func (t *BandwidthTrace) MeanRate(from, to time.Duration) units.BitRate {
	if to <= from {
		return 0
	}
	var bytes int64
	for i, b := range t.byIdx {
		mid := time.Duration(i)*t.bucket + t.bucket/2
		if mid >= from && mid < to {
			bytes += b
		}
	}
	return units.RateOf(units.ByteSize(bytes), to-from)
}

// SeqPoint is one transmitted TCP segment for a sequence-number trace.
type SeqPoint struct {
	T    time.Duration
	Seq  int64
	Len  units.ByteSize
	Retx bool
}

// SeqTrace records TCP segment transmissions (Figure 7). Attach its
// Record method to tcpsim.Conn.TraceSend.
type SeqTrace struct {
	Points []SeqPoint
}

// Record appends a transmission; it has the signature of
// tcpsim.Conn.TraceSend.
func (t *SeqTrace) Record(now time.Duration, seq int64, length units.ByteSize, retx bool) {
	t.Points = append(t.Points, SeqPoint{T: now, Seq: seq, Len: length, Retx: retx})
}

// Series converts the trace to (time, sequence number in Kb) points,
// the units of Figure 7's y-axis.
func (t *SeqTrace) Series(name string) Series {
	s := Series{Name: name}
	for _, p := range t.Points {
		s.Points = append(s.Points, Point{T: p.T, V: float64(p.Seq) * 8 / 1000})
	}
	return s
}

// Between returns the points with from <= T < to.
func (t *SeqTrace) Between(from, to time.Duration) []SeqPoint {
	var out []SeqPoint
	for _, p := range t.Points {
		if p.T >= from && p.T < to {
			out = append(out, p)
		}
	}
	return out
}

// Retransmits counts retransmitted segments in the trace.
func (t *SeqTrace) Retransmits() int {
	n := 0
	for _, p := range t.Points {
		if p.Retx {
			n++
		}
	}
	return n
}

// BurstStats summarizes the burstiness of a sequence trace: the
// largest number of bytes transmitted within any window of the given
// width.
func (t *SeqTrace) BurstStats(window time.Duration) (maxBurst units.ByteSize) {
	if len(t.Points) == 0 {
		return 0
	}
	pts := make([]SeqPoint, len(t.Points))
	copy(pts, t.Points)
	sort.Slice(pts, func(i, j int) bool { return pts[i].T < pts[j].T })
	start := 0
	var cur units.ByteSize
	for i, p := range pts {
		cur += p.Len
		for pts[start].T < p.T-window {
			cur -= pts[start].Len
			start++
		}
		_ = i
		if cur > maxBurst {
			maxBurst = cur
		}
	}
	return maxBurst
}

// Table renders labelled rows with a header, used by the cmd tools to
// print the paper's tables.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}
