package trace

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Plot renders one or more series as a standalone SVG line chart, so
// cmd/garnet can emit figures directly comparable to the paper's
// plots. Pure stdlib: the output is a complete <svg> document.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Scatter renders points as marks instead of connected lines
	// (Figure 7's sequence plots).
	Scatter bool
	// Width and Height of the chart in pixels (defaults 640×400).
	Width, Height int
}

// chart geometry.
const (
	marginLeft   = 70
	marginRight  = 20
	marginTop    = 40
	marginBottom = 50
)

var plotColors = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// SVG renders the plot.
func (p Plot) SVG() string {
	w, h := p.Width, p.Height
	if w == 0 {
		w = 640
	}
	if h == 0 {
		h = 400
	}
	plotW := float64(w - marginLeft - marginRight)
	plotH := float64(h - marginTop - marginBottom)

	// Data ranges.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1)
	for _, s := range p.Series {
		for _, pt := range s.Points {
			x := pt.T.Seconds()
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
			if pt.V > maxY {
				maxY = pt.V
			}
			if pt.V < minY {
				minY = pt.V
			}
		}
	}
	if math.IsInf(minX, 1) {
		minX, maxX, maxY = 0, 1, 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	sx := func(x float64) float64 { return float64(marginLeft) + (x-minX)/(maxX-minX)*plotW }
	sy := func(y float64) float64 { return float64(marginTop) + (1-(y-minY)/(maxY-minY))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	if p.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="20" text-anchor="middle" font-size="14">%s</text>`+"\n", w/2, escape(p.Title))
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, h-marginBottom)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, h-marginBottom, w-marginRight, h-marginBottom)
	// Ticks: 5 per axis.
	for i := 0; i <= 5; i++ {
		x := minX + (maxX-minX)*float64(i)/5
		px := sx(x)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			px, h-marginBottom, px, h-marginBottom+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			px, h-marginBottom+20, formatTick(x))
		y := minY + (maxY-minY)*float64(i)/5
		py := sy(y)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			marginLeft-5, py, marginLeft, py)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" dominant-baseline="middle">%s</text>`+"\n",
			marginLeft-8, py, formatTick(y))
	}
	if p.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n",
			marginLeft+int(plotW/2), h-10, escape(p.XLabel))
	}
	if p.YLabel != "" {
		fmt.Fprintf(&b, `<text x="15" y="%d" text-anchor="middle" transform="rotate(-90 15 %d)">%s</text>`+"\n",
			marginTop+int(plotH/2), marginTop+int(plotH/2), escape(p.YLabel))
	}
	// Series.
	for i, s := range p.Series {
		color := plotColors[i%len(plotColors)]
		if p.Scatter {
			for _, pt := range s.Points {
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2" fill="%s"/>`+"\n",
					sx(pt.T.Seconds()), sy(pt.V), color)
			}
		} else if len(s.Points) > 0 {
			var path strings.Builder
			for j, pt := range s.Points {
				cmd := "L"
				if j == 0 {
					cmd = "M"
				}
				fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, sx(pt.T.Seconds()), sy(pt.V))
			}
			fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
				path.String(), color)
		}
		// Legend.
		ly := marginTop + 15*i
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			w-marginRight-120, ly, w-marginRight-100, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" dominant-baseline="middle">%s</text>`+"\n",
			w-marginRight-95, ly, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func formatTick(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 10000:
		return fmt.Sprintf("%.0fk", v/1000)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// XYSeries builds a Series from arbitrary (x, y) pairs by encoding x
// as seconds — used for reservation-sweep plots where the x axis is
// bandwidth, not time.
func XYSeries(name string, xs, ys []float64) Series {
	s := Series{Name: name}
	for i := range xs {
		if i < len(ys) {
			s.Points = append(s.Points, Point{T: time.Duration(xs[i] * float64(time.Second)), V: ys[i]})
		}
	}
	return s
}
