package sim

import "time"

// Cond is a condition-variable-like primitive for processes. Waiters
// are woken in FIFO order. Signal and Broadcast may be called from
// event callbacks or from other processes; wakeups are delivered as
// events at the current instant, preserving the single-runner
// invariant.
//
// As with sync.Cond, a woken process should re-check its predicate:
// state may change between the Signal and the wakeup event running.
type Cond struct {
	k       *Kernel
	waiters []*condWaiter
}

type condWaiter struct {
	p        *Proc
	woken    bool
	timedOut bool
}

// NewCond returns a Cond bound to kernel k.
func NewCond(k *Kernel) *Cond { return &Cond{k: k} }

// Wait blocks the calling process until Signal or Broadcast wakes it.
func (c *Cond) Wait(ctx *Ctx) {
	ctx.checkCtx()
	w := &condWaiter{p: ctx.p}
	c.waiters = append(c.waiters, w)
	ctx.p.park()
}

// WaitTimeout blocks the calling process until woken or until d
// elapses. It reports true if woken by Signal/Broadcast and false on
// timeout.
func (c *Cond) WaitTimeout(ctx *Ctx, d time.Duration) bool {
	ctx.checkCtx()
	if d <= 0 {
		return false
	}
	w := &condWaiter{p: ctx.p}
	c.waiters = append(c.waiters, w)
	timer := c.k.After(d, func() {
		if w.woken {
			return
		}
		w.woken = true
		w.timedOut = true
		c.remove(w)
		c.k.step(w.p)
	})
	ctx.p.park()
	timer.Cancel()
	return !w.timedOut
}

// Signal wakes the longest-waiting process, if any. It reports whether
// a waiter was woken.
func (c *Cond) Signal() bool {
	for len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		if w.woken {
			continue
		}
		w.woken = true
		c.k.AtFunc(c.k.now, PrioNormal, stepProc, c.k, w.p)
		return true
	}
	return false
}

// Broadcast wakes all waiting processes.
func (c *Cond) Broadcast() {
	for c.Signal() {
	}
}

// Waiting returns the number of processes currently blocked on c.
func (c *Cond) Waiting() int {
	n := 0
	for _, w := range c.waiters {
		if !w.woken {
			n++
		}
	}
	return n
}

func (c *Cond) remove(w *condWaiter) {
	for i, x := range c.waiters {
		if x == w {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// Mutex is a mutual-exclusion lock for processes. Lock blocks the
// calling process until the lock is free; waiters acquire in FIFO
// order. Unlock may be called from any context.
type Mutex struct {
	held bool
	cond *Cond
}

// NewMutex returns an unlocked mutex on kernel k.
func NewMutex(k *Kernel) *Mutex { return &Mutex{cond: NewCond(k)} }

// Lock blocks until the mutex is acquired.
func (m *Mutex) Lock(ctx *Ctx) {
	for m.held {
		m.cond.Wait(ctx)
	}
	m.held = true
}

// Unlock releases the mutex and wakes one waiter. Unlocking an
// unlocked mutex panics.
func (m *Mutex) Unlock() {
	if !m.held {
		panic("sim: Unlock of unlocked Mutex")
	}
	m.held = false
	m.cond.Signal()
}

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.held }

// Mailbox is an unbounded FIFO queue with blocking receive, the
// simulation analogue of a channel. Any number of processes may block
// in Recv; items are handed out in arrival order to waiters in FIFO
// order. Send never blocks and may be called from event callbacks.
type Mailbox struct {
	k     *Kernel
	items []any
	cond  *Cond
	// closed marks the mailbox as delivering no further items; Recv
	// returns (nil, false) once drained.
	closed bool
}

// NewMailbox returns an empty mailbox bound to kernel k.
func NewMailbox(k *Kernel) *Mailbox {
	return &Mailbox{k: k, cond: NewCond(k)}
}

// Send enqueues v and wakes one waiting receiver.
func (m *Mailbox) Send(v any) {
	if m.closed {
		panic("sim: Send on closed Mailbox")
	}
	m.items = append(m.items, v)
	m.cond.Signal()
}

// Close marks the mailbox closed. Blocked and future receivers get
// (nil, false) once the queue drains.
func (m *Mailbox) Close() {
	if m.closed {
		return
	}
	m.closed = true
	m.cond.Broadcast()
}

// Recv blocks until an item is available or the mailbox is closed and
// drained. The second result is false only in the closed-and-drained
// case.
func (m *Mailbox) Recv(ctx *Ctx) (any, bool) {
	for len(m.items) == 0 {
		if m.closed {
			return nil, false
		}
		m.cond.Wait(ctx)
	}
	v := m.items[0]
	m.items = m.items[1:]
	return v, true
}

// RecvTimeout is Recv with a deadline; ok is false if the timeout
// expired or the mailbox closed before an item arrived.
func (m *Mailbox) RecvTimeout(ctx *Ctx, d time.Duration) (v any, ok bool) {
	deadline := m.k.now + d
	for len(m.items) == 0 {
		if m.closed {
			return nil, false
		}
		remain := deadline - m.k.now
		if remain <= 0 || !m.cond.WaitTimeout(ctx, remain) {
			if len(m.items) > 0 {
				break
			}
			return nil, false
		}
	}
	v = m.items[0]
	m.items = m.items[1:]
	return v, true
}

// TryRecv returns an item if one is queued, without blocking.
func (m *Mailbox) TryRecv() (any, bool) {
	if len(m.items) == 0 {
		return nil, false
	}
	v := m.items[0]
	m.items = m.items[1:]
	return v, true
}

// Len returns the number of queued items.
func (m *Mailbox) Len() int { return len(m.items) }

// Closed reports whether Close has been called.
func (m *Mailbox) Closed() bool { return m.closed }
