package sim

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkKernelAfter measures the schedule-and-fire cycle of the
// closure-free fast path: one event scheduled and run per iteration.
func BenchmarkKernelAfter(b *testing.B) {
	k := New(1)
	nop := func(a0, a1 any) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.AfterFunc(time.Microsecond, nop, nil, nil)
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelAfterCancel measures the schedule-then-cancel cycle:
// the cancelled event must be physically removed and its struct
// recycled without garbage.
func BenchmarkKernelAfterCancel(b *testing.B) {
	k := New(1)
	nop := func(a0, a1 any) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := k.AfterFunc(time.Microsecond, nop, nil, nil)
		if !tm.Cancel() {
			b.Fatal("cancel failed")
		}
	}
}

// TestKernelAfterFuncZeroAlloc pins the zero-allocation guarantee of
// the pooled event path once the freelist is warm.
func TestKernelAfterFuncZeroAlloc(t *testing.T) {
	k := New(1)
	nop := func(a0, a1 any) {}
	// Warm the freelist and the heap slice.
	for i := 0; i < 64; i++ {
		k.AfterFunc(time.Microsecond, nop, nil, nil)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		k.AfterFunc(time.Microsecond, nop, nil, nil)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AfterFunc+Run allocates %.1f objects per event, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		k.AfterFunc(time.Microsecond, nop, nil, nil).Cancel()
	})
	if allocs != 0 {
		t.Fatalf("AfterFunc+Cancel allocates %.1f objects per event, want 0", allocs)
	}
}

// TestCancelKeepsQueueBounded is the regression test for the old lazy
// tombstoning behaviour, where cancelled timers sat in the heap until
// their scheduled instant. A workload that perpetually re-arms a
// far-future timer (the shape of TCP retransmit timers under steady
// ACK flow) must keep the live queue bounded.
func TestCancelKeepsQueueBounded(t *testing.T) {
	k := New(1)
	nop := func(a0, a1 any) {}
	var tm Timer
	const rearms = 100000
	for i := 0; i < rearms; i++ {
		tm.Cancel()
		// Far future relative to the workload: with tombstoning these
		// would all accumulate.
		tm = k.AfterFunc(time.Hour, nop, nil, nil)
		if n := k.PendingEvents(); n > 1 {
			t.Fatalf("after %d re-arms: %d events pending, want <= 1", i+1, n)
		}
	}
	if !tm.Pending() {
		t.Fatal("last timer should still be pending")
	}
	tm.Cancel()
	if n := k.PendingEvents(); n != 0 {
		t.Fatalf("queue has %d events after final cancel, want 0", n)
	}
}

// TestTimerHandleStaleness pins the generation-counter semantics: a
// handle to a fired or cancelled event must read as inert even after
// the pooled struct is reused by a new event.
func TestTimerHandleStaleness(t *testing.T) {
	k := New(1)
	fired := 0
	old := k.After(time.Millisecond, func() { fired++ })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Reuse the pooled struct for a fresh event.
	fresh := k.After(time.Millisecond, func() { fired++ })
	if old.Pending() {
		t.Fatal("stale handle reports pending")
	}
	if old.Cancel() {
		t.Fatal("stale handle cancelled the reused event")
	}
	if !fresh.Pending() {
		t.Fatal("fresh timer not pending")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

// The dense-kernel benchmarks are the event-queue bakeoff: the 4-ary
// indexed heap that ships in the kernel against the Brown calendar
// queue (calqueue.go), run on the classic hold model — a queue held at
// a fixed population while every iteration dequeues the minimum and
// schedules a successor a random gap ahead. This is the steady-state
// shape of a packet simulation: the population is the number of
// in-flight timers and packets. The verdict (and why the kernel keeps
// the heap or switched) is recorded in docs/performance.md.

// holdQueue is what the hold model needs from a contender.
type holdQueue interface {
	push(*event)
	popMin() *event
}

// heapAdapter lifts eventHeap's pointer methods into holdQueue.
type heapAdapter struct{ h eventHeap }

func (a *heapAdapter) push(e *event)  { a.h.push(e) }
func (a *heapAdapter) popMin() *event { return a.h.popMin() }

func benchmarkKernelDense(b *testing.B, n int, q holdQueue) {
	rng := NewRNG(1)
	var seq uint64
	// Preload the steady-state population, uniformly spread so the
	// initial occupancy matches the hold distribution.
	for i := 0; i < n; i++ {
		seq++
		q.push(&event{
			at:    time.Duration(int64(rng.Intn(n * int(time.Microsecond)))),
			seq:   seq,
			index: -1,
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := q.popMin()
		seq++
		// Mean gap of n/2 µs keeps the population's time spread
		// stationary at any n.
		e.at += time.Duration(int64(rng.Intn(n * int(time.Microsecond))))
		e.seq = seq
		q.push(e)
	}
}

func BenchmarkKernelDenseHeap(b *testing.B) {
	for _, n := range []int{256, 4096, 65536} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchmarkKernelDense(b, n, &heapAdapter{})
		})
	}
}

func BenchmarkKernelDenseCalendar(b *testing.B) {
	for _, n := range []int{256, 4096, 65536} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchmarkKernelDense(b, n, newCalQueue(time.Duration(n/2)*time.Microsecond, 8))
		})
	}
}
