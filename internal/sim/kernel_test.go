package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	k := New(1)
	var got []int
	k.At(2*time.Second, PrioNormal, func() { got = append(got, 3) })
	k.At(1*time.Second, PrioNormal, func() { got = append(got, 1) })
	k.At(2*time.Second, PrioNet, func() { got = append(got, 2) })
	k.At(3*time.Second, PrioLate, func() { got = append(got, 5) })
	k.At(3*time.Second, PrioNormal, func() { got = append(got, 4) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if k.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", k.Now())
	}
}

func TestSameTimeSamePrioFIFO(t *testing.T) {
	k := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(time.Second, PrioNormal, func() { got = append(got, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("insertion order not preserved: %v", got)
		}
	}
}

func TestTimerCancel(t *testing.T) {
	k := New(1)
	fired := false
	tm := k.After(time.Second, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Cancel() {
		t.Fatal("first cancel should succeed")
	}
	if tm.Cancel() {
		t.Fatal("second cancel should fail")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestTimerCancelAfterFire(t *testing.T) {
	k := New(1)
	tm := k.After(time.Second, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if tm.Pending() {
		t.Fatal("fired timer still pending")
	}
	if tm.Cancel() {
		t.Fatal("cancel after fire should report false")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	k := New(1)
	fired := 0
	k.After(time.Second, func() { fired++ })
	k.After(10*time.Second, func() { fired++ })
	if err := k.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if k.Now() != 5*time.Second {
		t.Fatalf("clock = %v, want 5s", k.Now())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := New(1)
	k.After(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		k.At(0, PrioNormal, func() {})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcessSleep(t *testing.T) {
	k := New(1)
	var wake []time.Duration
	k.Spawn("sleeper", func(ctx *Ctx) {
		for i := 0; i < 3; i++ {
			ctx.Sleep(time.Second)
			wake = append(wake, ctx.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	for i := range want {
		if wake[i] != want[i] {
			t.Fatalf("wake = %v, want %v", wake, want)
		}
	}
}

func TestProcessInterleaving(t *testing.T) {
	k := New(1)
	var order []string
	mk := func(name string, period time.Duration) {
		k.Spawn(name, func(ctx *Ctx) {
			for i := 0; i < 2; i++ {
				ctx.Sleep(period)
				order = append(order, name)
			}
		})
	}
	mk("a", 10*time.Millisecond)
	mk("b", 15*time.Millisecond)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "a", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSpawnAt(t *testing.T) {
	k := New(1)
	var started time.Duration = -1
	k.SpawnAt(42*time.Second, "late", func(ctx *Ctx) { started = ctx.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if started != 42*time.Second {
		t.Fatalf("started at %v, want 42s", started)
	}
}

func TestProcessPanicCaptured(t *testing.T) {
	k := New(1)
	k.Spawn("bad", func(ctx *Ctx) {
		ctx.Sleep(time.Second)
		panic("boom")
	})
	err := k.Run()
	if err == nil {
		t.Fatal("expected error from panicking process")
	}
}

func TestSpawnChild(t *testing.T) {
	k := New(1)
	childRan := false
	k.Spawn("parent", func(ctx *Ctx) {
		ctx.SpawnChild("child", func(c2 *Ctx) {
			c2.Sleep(time.Second)
			childRan = true
		})
		ctx.Sleep(2 * time.Second)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child did not run")
	}
}

func TestBlockedProcs(t *testing.T) {
	k := New(1)
	c := NewCond(k)
	k.Spawn("stuck", func(ctx *Ctx) { c.Wait(ctx) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	blocked := k.BlockedProcs()
	if len(blocked) != 1 || blocked[0] != "stuck" {
		t.Fatalf("blocked = %v, want [stuck]", blocked)
	}
	if k.LiveProcs() != 1 {
		t.Fatalf("live = %d, want 1", k.LiveProcs())
	}
}

func TestStop(t *testing.T) {
	k := New(1)
	n := 0
	for i := 1; i <= 10; i++ {
		k.At(time.Duration(i)*time.Second, PrioNormal, func() {
			n++
			if n == 3 {
				k.Stop()
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("processed %d events before stop, want 3", n)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("processed %d total, want 10", n)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		k := New(7)
		var ticks []time.Duration
		for i := 0; i < 4; i++ {
			k.Spawn("p", func(ctx *Ctx) {
				for j := 0; j < 20; j++ {
					d := time.Duration(ctx.RNG().Intn(1000)) * time.Millisecond
					ctx.Sleep(d)
					ticks = append(ticks, ctx.Now())
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return ticks
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
