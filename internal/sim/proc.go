package sim

import (
	"fmt"
	"time"
)

// Proc is a simulated process: a goroutine whose execution is
// interleaved with the event loop such that exactly one of (kernel,
// some process) runs at any moment.
type Proc struct {
	k       *Kernel
	name    string
	resume  chan struct{}
	yield   chan struct{}
	done    bool
	blocked bool
}

// Ctx is the handle a process function uses to interact with virtual
// time. It is only valid inside the process's own goroutine.
type Ctx struct {
	k *Kernel
	p *Proc
}

// Spawn creates a process named name running fn and schedules it to
// start at the current virtual time. The returned Proc can be used to
// query completion.
func (k *Kernel) Spawn(name string, fn func(ctx *Ctx)) *Proc {
	//lint:ignore shardsafety SpawnAt's goroutine is the kernel's own process machinery; see the justification on the go statement there
	return k.SpawnAt(k.now, name, fn)
}

// SpawnAt creates a process that starts at absolute virtual time at.
func (k *Kernel) SpawnAt(at time.Duration, name string, fn func(ctx *Ctx)) *Proc {
	p := &Proc{
		k:      k,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	ctx := &Ctx{k: k, p: p}
	//lint:ignore determinism,shardsafety this goroutine IS Kernel.Spawn's implementation; the kernel admits exactly one runnable process at a time via resume/yield handshakes, so scheduling stays deterministic and the captured kernel/proc/ctx never leave the owning kernel's control
	go func() {
		<-p.resume // wait for the start event
		defer func() {
			if r := recover(); r != nil {
				if k.err == nil {
					k.err = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
				}
			}
			p.done = true
			p.yield <- struct{}{}
		}()
		fn(ctx)
	}()
	k.AtFunc(at, PrioNormal, stepProc, k, p)
	return p
}

// stepProc is the prebound wakeup callback shared by every sleep and
// spawn event, so waking a process never allocates a closure.
func stepProc(a0, a1 any) { a0.(*Kernel).step(a1.(*Proc)) }

// step transfers control to process p and waits for it to block or
// finish. It must only be called from the kernel goroutine (i.e. from
// inside an event callback).
func (k *Kernel) step(p *Proc) {
	if p.done {
		return
	}
	prev := k.cur
	k.cur = p
	p.blocked = false
	p.resume <- struct{}{}
	<-p.yield
	k.cur = prev
}

// park suspends the calling process goroutine and returns control to
// the kernel. The process resumes when some event calls k.step(p).
// Must be called from p's own goroutine.
func (p *Proc) park() {
	p.blocked = true
	p.yield <- struct{}{}
	<-p.resume
}

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.done }

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (c *Ctx) Now() time.Duration { return c.k.now }

// Kernel returns the kernel this process runs on.
func (c *Ctx) Kernel() *Kernel { return c.k }

// Name returns the process name.
func (c *Ctx) Name() string { return c.p.name }

// RNG returns the kernel's deterministic RNG.
func (c *Ctx) RNG() *RNG { return c.k.rng }

// Sleep suspends the process for d of virtual time. Negative or zero
// durations yield to other events scheduled at the current instant and
// then continue.
func (c *Ctx) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.checkCtx()
	c.k.AtFunc(c.k.now+d, PrioNormal, stepProc, c.k, c.p)
	c.p.park()
}

// Yield reschedules the process behind all events already queued for
// the current instant.
func (c *Ctx) Yield() { c.Sleep(0) }

// SpawnChild spawns another process starting now. It is a convenience
// for process code that launches helpers.
func (c *Ctx) SpawnChild(name string, fn func(ctx *Ctx)) *Proc {
	return c.k.SpawnAt(c.k.now, name, fn)
}

func (c *Ctx) checkCtx() {
	if c.k.cur != c.p {
		panic(fmt.Sprintf("sim: Ctx for process %q used outside its goroutine", c.p.name))
	}
}
