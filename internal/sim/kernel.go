// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and a priority queue of events.
// Simulated processes run as goroutines, but the kernel admits exactly
// one runnable goroutine at a time and orders simultaneous events by
// (priority, insertion sequence), so every run with the same seed is
// bit-for-bit reproducible.
//
// Two execution styles coexist:
//
//   - Event callbacks (Kernel.At / Kernel.After) run inline in the
//     kernel's goroutine. Network elements (links, queues, routers) use
//     these.
//   - Processes (Kernel.Spawn) are goroutines that may block on
//     Ctx.Sleep, Cond.Wait, or Mailbox.Recv. Applications (MPI ranks,
//     traffic generators) use these.
//
// The event queue is a 4-ary indexed heap over pooled event structs:
// scheduling on the steady-state hot path performs no allocation (use
// the AtFunc/AfterFunc variants; the closure-taking forms still cost
// whatever the closure itself captures), and Timer.Cancel physically
// removes the event from the heap, so cancel-heavy workloads keep the
// queue small. See docs/performance.md for the hot-path inventory.
package sim

import (
	"fmt"
	"sort"
	"time"

	"mpichgq/internal/metrics"
	"mpichgq/internal/spans"
)

// Event priorities. Lower values run first among events scheduled for
// the same instant.
const (
	// PrioNet orders packet deliveries ahead of application timers so
	// that data "on the wire" at time t is visible to timers at t.
	PrioNet = -10
	// PrioNormal is the default priority.
	PrioNormal = 0
	// PrioLate runs after everything else at the same instant; trace
	// sampling uses it so samples observe a settled state.
	PrioLate = 10
)

// An event is a scheduled callback. Events are pooled: after firing or
// cancellation the struct returns to the kernel's freelist and its
// generation counter advances, which invalidates any Timer handles
// still pointing at it.
type event struct {
	at    time.Duration
	prio  int32
	index int32 // position in the heap, -1 when not queued
	seq   uint64
	gen   uint64
	// Exactly one of fn / afn is set. afn receives the two scheduling
	// arguments, letting hot paths schedule prebound functions without
	// allocating a closure.
	fn     func()
	afn    func(a0, a1 any)
	a0, a1 any
	owner  *Kernel
}

// eventHeap is a 4-ary min-heap ordered by (at, prio, seq), maintaining
// each event's index for O(log n) removal by handle. A 4-ary layout
// halves the tree depth of a binary heap and keeps children of a node
// in one cache line's worth of pointers, which measurably speeds up the
// push/pop churn a packet simulation generates.
type eventHeap []*event

func (h eventHeap) less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(e *event) {
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

// popMin removes and returns the earliest event.
func (h *eventHeap) popMin() *event {
	old := *h
	root := old[0]
	n := len(old) - 1
	last := old[n]
	old[n] = nil
	*h = old[:n]
	if n > 0 {
		old[0] = last
		last.index = 0
		h.down(0)
	}
	root.index = -1
	return root
}

// remove deletes the event at heap position i.
func (h *eventHeap) remove(i int) {
	old := *h
	n := len(old) - 1
	last := old[n]
	old[n] = nil
	*h = old[:n]
	if i < n {
		old[i] = last
		last.index = int32(i)
		h.down(i)
		h.up(i)
	}
}

func (h eventHeap) up(j int) {
	e := h[j]
	for j > 0 {
		parent := (j - 1) / 4
		p := h[parent]
		if !h.less(e, p) {
			break
		}
		h[j] = p
		p.index = int32(j)
		j = parent
	}
	h[j] = e
	e.index = int32(j)
}

func (h eventHeap) down(j int) {
	n := len(h)
	e := h[j]
	for {
		first := 4*j + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if h.less(h[c], h[min]) {
				min = c
			}
		}
		if !h.less(h[min], e) {
			break
		}
		h[j] = h[min]
		h[j].index = int32(j)
		j = min
	}
	h[j] = e
	e.index = int32(j)
}

// Kernel is a discrete-event simulator instance.
type Kernel struct {
	now   time.Duration
	queue eventHeap
	free  []*event // recycled event structs
	seq   uint64
	rng   *RNG
	procs []*Proc
	// cur is the process currently executing, nil when the kernel
	// itself (an event callback) is running.
	cur     *Proc
	stopped bool
	err     error
	ran     uint64
	metrics *metrics.Registry
	tracer  *spans.Tracer
}

// New returns a kernel with its clock at zero and a deterministic RNG
// seeded with seed.
func New(seed int64) *Kernel {
	k := &Kernel{rng: NewRNG(seed)}
	k.metrics = metrics.New(k.Now)
	k.tracer = spans.New(k.Now)
	return k
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// EventsRun returns the number of events the kernel has executed. The
// fluid-vs-packet validation ablation uses it to report how much event
// volume the hybrid mode removes.
func (k *Kernel) EventsRun() uint64 { return k.ran }

// Metrics returns the kernel's metrics registry; every subsystem
// built on this kernel registers its series and emits flight-recorder
// events here, with timestamps from the kernel clock.
func (k *Kernel) Metrics() *metrics.Registry { return k.metrics }

// Tracer returns the kernel's causal span tracer. It is disabled by
// default (Begin returns inert nil spans); experiment drivers enable
// it before the run when a trace export was requested.
func (k *Kernel) Tracer() *spans.Tracer { return k.tracer }

// RNG returns the kernel's deterministic random number generator.
func (k *Kernel) RNG() *RNG { return k.rng }

// Timer is a handle to a scheduled event that can be cancelled. The
// zero Timer is valid: Pending reports false and Cancel is a no-op.
// Timers are values; copying one copies the handle, and a handle
// outliving its event (fired or cancelled) safely degrades to inert
// because the pooled event's generation has moved on.
type Timer struct {
	e   *event
	gen uint64
}

// Cancel prevents the timer's callback from running, removing the
// event from the queue immediately. Cancelling an already-fired or
// already-cancelled timer is a no-op. It reports whether the callback
// was still pending.
func (t Timer) Cancel() bool {
	e := t.e
	if e == nil || e.gen != t.gen || e.index < 0 {
		return false
	}
	k := e.owner
	k.queue.remove(int(e.index))
	e.index = -1
	k.recycle(e)
	return true
}

// Pending reports whether the timer's callback has not yet run or been
// cancelled.
func (t Timer) Pending() bool {
	return t.e != nil && t.e.gen == t.gen
}

// newEvent takes an event struct from the freelist, or allocates one.
func (k *Kernel) newEvent() *event {
	if n := len(k.free); n > 0 {
		e := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		return e
	}
	return &event{owner: k}
}

// recycle advances the event's generation (invalidating Timer handles)
// and returns it to the freelist.
func (k *Kernel) recycle(e *event) {
	e.gen++
	e.fn, e.afn, e.a0, e.a1 = nil, nil, nil, nil
	k.free = append(k.free, e)
}

func (k *Kernel) schedule(at time.Duration, prio int, fn func(), afn func(a0, a1 any), a0, a1 any) Timer {
	if at < k.now {
		panic(fmt.Sprintf("sim: event scheduled in the past (at=%v now=%v)", at, k.now))
	}
	k.seq++
	e := k.newEvent()
	e.at, e.prio, e.seq = at, int32(prio), k.seq
	e.fn, e.afn, e.a0, e.a1 = fn, afn, a0, a1
	k.queue.push(e)
	return Timer{e: e, gen: e.gen}
}

// At schedules fn to run at absolute virtual time at with the given
// priority. Scheduling in the past (before Now) panics: that is always
// a logic error in a simulation.
func (k *Kernel) At(at time.Duration, prio int, fn func()) Timer {
	return k.schedule(at, prio, fn, nil, nil, nil)
}

// AtFunc is At for hot paths: fn is called with the two scheduling
// arguments, so callers can pass a prebound package-level function and
// pointer arguments without allocating a closure per event.
func (k *Kernel) AtFunc(at time.Duration, prio int, fn func(a0, a1 any), a0, a1 any) Timer {
	return k.schedule(at, prio, nil, fn, a0, a1)
}

// After schedules fn to run d from now at normal priority.
func (k *Kernel) After(d time.Duration, fn func()) Timer {
	return k.schedule(k.now+d, PrioNormal, fn, nil, nil, nil)
}

// AfterPrio schedules fn to run d from now at the given priority.
func (k *Kernel) AfterPrio(d time.Duration, prio int, fn func()) Timer {
	return k.schedule(k.now+d, prio, fn, nil, nil, nil)
}

// AfterFunc is After's closure-free variant; see AtFunc.
func (k *Kernel) AfterFunc(d time.Duration, fn func(a0, a1 any), a0, a1 any) Timer {
	return k.schedule(k.now+d, PrioNormal, nil, fn, a0, a1)
}

// AfterPrioFunc is AfterPrio's closure-free variant; see AtFunc.
func (k *Kernel) AfterPrioFunc(d time.Duration, prio int, fn func(a0, a1 any), a0, a1 any) Timer {
	return k.schedule(k.now+d, prio, nil, fn, a0, a1)
}

// Stop makes Run return after the current event completes. Pending
// events remain queued; Run may be called again to continue.
func (k *Kernel) Stop() { k.stopped = true }

// Err returns the first error captured from a panicking process.
func (k *Kernel) Err() error { return k.err }

// noDeadline makes run drain the queue with no time bound.
const noDeadline time.Duration = -1

// Run processes events until the queue is empty, Stop is called, or a
// process panics. It returns the captured process error, if any.
func (k *Kernel) Run() error {
	return k.run(noDeadline)
}

// RunUntil processes events with timestamps <= deadline, then advances
// the clock to exactly deadline. It returns the captured process error,
// if any.
func (k *Kernel) RunUntil(deadline time.Duration) error {
	err := k.run(deadline)
	if err == nil && k.now < deadline {
		k.now = deadline
	}
	return err
}

// RunFor runs the simulation for d beyond the current time.
func (k *Kernel) RunFor(d time.Duration) error {
	return k.RunUntil(k.now + d)
}

func (k *Kernel) run(deadline time.Duration) error {
	k.stopped = false
	for len(k.queue) > 0 && !k.stopped && k.err == nil {
		next := k.queue[0]
		if deadline >= 0 && next.at > deadline {
			break
		}
		k.queue.popMin()
		if next.at < k.now {
			panic("sim: time went backwards")
		}
		k.now = next.at
		k.ran++
		// Recycle before invoking: the callback may schedule new
		// events, which can then reuse this struct, and any Timer
		// handle to this event must already read as fired.
		fn, afn, a0, a1 := next.fn, next.afn, next.a0, next.a1
		k.recycle(next)
		if fn != nil {
			fn()
		} else {
			afn(a0, a1)
		}
	}
	return k.err
}

// PendingEvents returns the number of scheduled events. Cancelled
// timers are removed from the queue eagerly, so every queued event is
// live.
func (k *Kernel) PendingEvents() int { return len(k.queue) }

// BlockedProcs returns the names of processes that are blocked (waiting
// on a Cond, Mailbox, or sleep) and not yet finished. Useful in tests
// for detecting unintended deadlock.
func (k *Kernel) BlockedProcs() []string {
	var names []string
	for _, p := range k.procs {
		if !p.done && p.blocked {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	return names
}

// LiveProcs returns the number of spawned processes that have not
// finished.
func (k *Kernel) LiveProcs() int {
	n := 0
	for _, p := range k.procs {
		if !p.done {
			n++
		}
	}
	return n
}
