// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and a priority queue of events.
// Simulated processes run as goroutines, but the kernel admits exactly
// one runnable goroutine at a time and orders simultaneous events by
// (priority, insertion sequence), so every run with the same seed is
// bit-for-bit reproducible.
//
// Two execution styles coexist:
//
//   - Event callbacks (Kernel.At / Kernel.After) run inline in the
//     kernel's goroutine. Network elements (links, queues, routers) use
//     these.
//   - Processes (Kernel.Spawn) are goroutines that may block on
//     Ctx.Sleep, Cond.Wait, or Mailbox.Recv. Applications (MPI ranks,
//     traffic generators) use these.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"mpichgq/internal/metrics"
)

// Event priorities. Lower values run first among events scheduled for
// the same instant.
const (
	// PrioNet orders packet deliveries ahead of application timers so
	// that data "on the wire" at time t is visible to timers at t.
	PrioNet = -10
	// PrioNormal is the default priority.
	PrioNormal = 0
	// PrioLate runs after everything else at the same instant; trace
	// sampling uses it so samples observe a settled state.
	PrioLate = 10
)

// An event is a scheduled callback.
type event struct {
	at        time.Duration
	prio      int
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 when popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulator instance.
type Kernel struct {
	now   time.Duration
	queue eventHeap
	seq   uint64
	rng   *RNG
	procs []*Proc
	// cur is the process currently executing, nil when the kernel
	// itself (an event callback) is running.
	cur     *Proc
	stopped bool
	err     error
	metrics *metrics.Registry
}

// New returns a kernel with its clock at zero and a deterministic RNG
// seeded with seed.
func New(seed int64) *Kernel {
	k := &Kernel{rng: NewRNG(seed)}
	k.metrics = metrics.New(k.Now)
	return k
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Metrics returns the kernel's metrics registry; every subsystem
// built on this kernel registers its series and emits flight-recorder
// events here, with timestamps from the kernel clock.
func (k *Kernel) Metrics() *metrics.Registry { return k.metrics }

// RNG returns the kernel's deterministic random number generator.
func (k *Kernel) RNG() *RNG { return k.rng }

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct{ e *event }

// Cancel prevents the timer's callback from running. Cancelling an
// already-fired or already-cancelled timer is a no-op. It reports
// whether the callback was still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.e == nil || t.e.cancelled || t.e.fn == nil {
		return false
	}
	t.e.cancelled = true
	return true
}

// Pending reports whether the timer's callback has not yet run or been
// cancelled.
func (t *Timer) Pending() bool {
	return t != nil && t.e != nil && !t.e.cancelled && t.e.fn != nil
}

// At schedules fn to run at absolute virtual time at with the given
// priority. Scheduling in the past (before Now) panics: that is always
// a logic error in a simulation.
func (k *Kernel) At(at time.Duration, prio int, fn func()) *Timer {
	if at < k.now {
		panic(fmt.Sprintf("sim: event scheduled in the past (at=%v now=%v)", at, k.now))
	}
	k.seq++
	e := &event{at: at, prio: prio, seq: k.seq, fn: fn}
	heap.Push(&k.queue, e)
	return &Timer{e: e}
}

// After schedules fn to run d from now at normal priority.
func (k *Kernel) After(d time.Duration, fn func()) *Timer {
	return k.At(k.now+d, PrioNormal, fn)
}

// AfterPrio schedules fn to run d from now at the given priority.
func (k *Kernel) AfterPrio(d time.Duration, prio int, fn func()) *Timer {
	return k.At(k.now+d, prio, fn)
}

// Stop makes Run return after the current event completes. Pending
// events remain queued; Run may be called again to continue.
func (k *Kernel) Stop() { k.stopped = true }

// Err returns the first error captured from a panicking process.
func (k *Kernel) Err() error { return k.err }

// Run processes events until the queue is empty, Stop is called, or a
// process panics. It returns the captured process error, if any.
func (k *Kernel) Run() error {
	return k.run(-1)
}

// RunUntil processes events with timestamps <= deadline, then advances
// the clock to exactly deadline. It returns the captured process error,
// if any.
func (k *Kernel) RunUntil(deadline time.Duration) error {
	err := k.run(deadline)
	if err == nil && k.now < deadline {
		k.now = deadline
	}
	return err
}

// RunFor runs the simulation for d beyond the current time.
func (k *Kernel) RunFor(d time.Duration) error {
	return k.RunUntil(k.now + d)
}

func (k *Kernel) run(deadline time.Duration) error {
	k.stopped = false
	for len(k.queue) > 0 && !k.stopped && k.err == nil {
		next := k.queue[0]
		if deadline >= 0 && next.at > deadline {
			break
		}
		heap.Pop(&k.queue)
		if next.cancelled {
			continue
		}
		if next.at < k.now {
			panic("sim: time went backwards")
		}
		k.now = next.at
		fn := next.fn
		next.fn = nil // mark fired
		fn()
	}
	return k.err
}

// PendingEvents returns the number of live (non-cancelled) events.
func (k *Kernel) PendingEvents() int {
	n := 0
	for _, e := range k.queue {
		if !e.cancelled {
			n++
		}
	}
	return n
}

// BlockedProcs returns the names of processes that are blocked (waiting
// on a Cond, Mailbox, or sleep) and not yet finished. Useful in tests
// for detecting unintended deadlock.
func (k *Kernel) BlockedProcs() []string {
	var names []string
	for _, p := range k.procs {
		if !p.done && p.blocked {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	return names
}

// LiveProcs returns the number of spawned processes that have not
// finished.
func (k *Kernel) LiveProcs() int {
	n := 0
	for _, p := range k.procs {
		if !p.done {
			n++
		}
	}
	return n
}
