package sim_test

import (
	"fmt"
	"time"

	"mpichgq/internal/sim"
)

// Two processes exchange through a mailbox in virtual time: the whole
// "day" of simulated work runs in microseconds of real time and is
// perfectly reproducible.
func Example() {
	k := sim.New(42)
	box := sim.NewMailbox(k)

	k.Spawn("producer", func(ctx *sim.Ctx) {
		for i := 1; i <= 3; i++ {
			ctx.Sleep(time.Hour)
			box.Send(fmt.Sprintf("batch %d", i))
		}
		box.Close()
	})
	k.Spawn("consumer", func(ctx *sim.Ctx) {
		for {
			v, ok := box.Recv(ctx)
			if !ok {
				return
			}
			fmt.Printf("t=%v: got %v\n", ctx.Now(), v)
		}
	})
	if err := k.Run(); err != nil {
		panic(err)
	}
	// Output:
	// t=1h0m0s: got batch 1
	// t=2h0m0s: got batch 2
	// t=3h0m0s: got batch 3
}

// Timers schedule plain callbacks; Cancel prevents them from firing.
func ExampleKernel_After() {
	k := sim.New(1)
	k.After(time.Second, func() { fmt.Println("one") })
	doomed := k.After(2*time.Second, func() { fmt.Println("never") })
	k.After(3*time.Second, func() { fmt.Println("three") })
	doomed.Cancel()
	k.Run()
	// Output:
	// one
	// three
}
