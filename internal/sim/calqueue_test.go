package sim

import (
	"testing"
	"time"
)

// TestCalQueueMatchesHeapOrder drives the calendar queue and the 4-ary
// heap through an identical randomized push/pop/remove workload on the
// same event structs and asserts they dequeue the same events in the
// same order — the bakeoff is only valid if the contender preserves
// the kernel's (at, prio, seq) total order exactly.
func TestCalQueueMatchesHeapOrder(t *testing.T) {
	rng := NewRNG(42)
	heap := &eventHeap{}
	cal := newCalQueue(time.Microsecond, 8)

	var seq uint64
	var live []*event
	now := time.Duration(0)
	push := func(at time.Duration, prio int32) {
		seq++
		e := &event{at: at, prio: prio, seq: seq, index: -1}
		heap.push(e)
		cal.push(e)
		live = append(live, e)
	}
	drop := func(e *event) {
		for i, x := range live {
			if x == e {
				live = append(live[:i], live[i+1:]...)
				return
			}
		}
		t.Fatalf("popped event not in live set")
	}

	for i := 0; i < 20000; i++ {
		switch op := rng.Intn(10); {
		case op < 5 || len(live) == 0:
			// Mixed horizon: mostly near-future, occasionally a
			// far-future timer (the RTO shape) and exact ties.
			at := now + time.Duration(int64(rng.Intn(int(50*time.Microsecond))))
			if op == 0 {
				at = now + time.Hour
			}
			push(at, int32(rng.Intn(3)-1))
		case op < 8:
			he := heap.popMin()
			ce := cal.popMin()
			if he != ce {
				t.Fatalf("step %d: heap popped (at=%v prio=%d seq=%d), calendar popped (at=%v prio=%d seq=%d)",
					i, he.at, he.prio, he.seq, ce.at, ce.prio, ce.seq)
			}
			if he.at < now {
				t.Fatalf("step %d: time went backwards: %v < %v", i, he.at, now)
			}
			now = he.at
			drop(he)
		default:
			// Cancel a random pending event from both structures.
			e := live[int64(rng.Intn(len(live)))]
			heap.remove(int(e.index))
			if !cal.remove(e) {
				t.Fatalf("step %d: calendar queue lost a live event", i)
			}
			drop(e)
		}
		if len(*heap) != cal.len() {
			t.Fatalf("step %d: heap has %d events, calendar %d", i, len(*heap), cal.len())
		}
	}
	// Drain: the full remaining order must agree.
	for cal.len() > 0 {
		if he, ce := heap.popMin(), cal.popMin(); he != ce {
			t.Fatalf("drain: heap popped seq %d, calendar seq %d", he.seq, ce.seq)
		}
	}
	if len(*heap) != 0 {
		t.Fatalf("heap still has %d events after calendar drained", len(*heap))
	}
}

// TestCalQueueResizeKeepsOrder pushes far past the initial bucket
// count so the queue rebuilds several times, then checks the drain
// order is globally sorted.
func TestCalQueueResizeKeepsOrder(t *testing.T) {
	rng := NewRNG(7)
	cal := newCalQueue(time.Microsecond, 4)
	for i := 0; i < 5000; i++ {
		cal.push(&event{
			at:    time.Duration(int64(rng.Intn(int(time.Second)))),
			prio:  int32(rng.Intn(3) - 1),
			seq:   uint64(i),
			index: -1,
		})
	}
	var prev *event
	for cal.len() > 0 {
		e := cal.popMin()
		if prev != nil && eventHeap(nil).less(e, prev) {
			t.Fatalf("order violated: (at=%v prio=%d seq=%d) after (at=%v prio=%d seq=%d)",
				e.at, e.prio, e.seq, prev.at, prev.prio, prev.seq)
		}
		prev = e
	}
}
