package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64). It is not safe for concurrent use, which is fine: the
// kernel admits one runner at a time.
type RNG struct {
	state uint64
}

// NewRNG returns an RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	r := &RNG{state: uint64(seed)}
	// Avoid the all-zero state producing a weak start.
	r.state += 0x9e3779b97f4a7c15
	return r
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative random int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed float64 with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a normally distributed float64 (mean 0, stddev 1)
// using the Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		u2 := r.Float64()
		if u1 <= 0 {
			continue
		}
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// Jitter returns a uniform float64 in [1-f, 1+f], useful for
// perturbing periodic behaviour.
func (r *RNG) Jitter(f float64) float64 {
	return 1 - f + 2*f*r.Float64()
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
