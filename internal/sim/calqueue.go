package sim

import (
	"sort"
	"time"
)

// calQueue is a Brown calendar queue over the kernel's pooled events:
// an array of time buckets of fixed width, each holding its events in
// (at, prio, seq) order, scanned by a cursor that walks bucket windows
// in virtual-time order. Enqueue is O(1) expected when the width
// matches the inter-event gap; dequeue-min scans forward from the
// cursor and falls back to a direct minimum search after an empty lap
// (the far-future-timer case).
//
// This is the contender in the event-kernel bakeoff against the 4-ary
// indexed heap (see BenchmarkKernelDense* in bench_test.go and the
// verdict in docs/performance.md). It preserves the heap's exact
// (at, prio, seq) total order, so swapping it into the kernel would
// not change any simulation result — only the constant factors.
type calQueue struct {
	buckets [][]*event
	width   time.Duration
	n       int
	// cur is the bucket the scan cursor is in; curStart is the start
	// of cur's current window (the lap the cursor is on).
	cur      int
	curStart time.Duration
}

// newCalQueue sizes the queue for an expected inter-event gap. The
// bucket count is fixed at creation; push grows it by rebuilding when
// occupancy doubles past it.
func newCalQueue(width time.Duration, nbuckets int) *calQueue {
	if width <= 0 {
		width = time.Microsecond
	}
	if nbuckets < 4 {
		nbuckets = 4
	}
	return &calQueue{buckets: make([][]*event, nbuckets), width: width}
}

func (q *calQueue) len() int { return q.n }

// bucketFor maps an absolute timestamp to its bucket index.
func (q *calQueue) bucketFor(at time.Duration) int {
	return int(at/q.width) % len(q.buckets)
}

// windowStart is the start of the bucket window containing at.
func (q *calQueue) windowStart(at time.Duration) time.Duration {
	return at - at%q.width
}

func (q *calQueue) push(e *event) {
	if q.n >= 2*len(q.buckets) {
		q.resize(2 * len(q.buckets))
	}
	idx := q.bucketFor(e.at)
	b := q.buckets[idx]
	// Insertion sort by the shared total order; buckets stay short
	// when the width matches the workload, so the scan is cheap.
	pos := sort.Search(len(b), func(i int) bool {
		return eventHeap(nil).less(e, b[i])
	})
	b = append(b, nil)
	copy(b[pos+1:], b[pos:])
	b[pos] = e
	q.buckets[idx] = b
	q.n++
	// An event behind the cursor would be skipped for a whole year;
	// pull the cursor back to it.
	if q.n == 1 || e.at < q.curStart {
		q.cur = idx
		q.curStart = q.windowStart(e.at)
	}
}

func (q *calQueue) popMin() *event {
	if q.n == 0 {
		return nil
	}
	for i := 0; i < len(q.buckets); i++ {
		b := q.buckets[q.cur]
		if len(b) > 0 && b[0].at < q.curStart+q.width {
			return q.take(q.cur, 0)
		}
		q.cur++
		q.curStart += q.width
		if q.cur == len(q.buckets) {
			q.cur = 0
		}
	}
	// A full lap found nothing due in its window: the next event is
	// more than a year ahead (or the queue is sparse). Find it
	// directly and jump the cursor to its window.
	var min *event
	minIdx := 0
	for idx, b := range q.buckets {
		if len(b) > 0 && (min == nil || eventHeap(nil).less(b[0], min)) {
			min, minIdx = b[0], idx
		}
	}
	q.cur = minIdx
	q.curStart = q.windowStart(min.at)
	return q.take(minIdx, 0)
}

// take removes and returns the event at position pos of bucket idx.
func (q *calQueue) take(idx, pos int) *event {
	b := q.buckets[idx]
	e := b[pos]
	copy(b[pos:], b[pos+1:])
	b[len(b)-1] = nil
	q.buckets[idx] = b[:len(b)-1]
	q.n--
	return e
}

// remove deletes an event by handle, the calendar analogue of the
// heap's indexed removal: recompute the bucket from the timestamp and
// scan it for the pointer.
func (q *calQueue) remove(e *event) bool {
	idx := q.bucketFor(e.at)
	for pos, x := range q.buckets[idx] {
		if x == e {
			q.take(idx, pos)
			return true
		}
	}
	return false
}

// resize rebuilds with nbuckets buckets and a width re-estimated from
// the average gap between the earliest events, the classic heuristic
// for keeping one-or-few events per bucket window.
func (q *calQueue) resize(nbuckets int) {
	var all []*event
	for _, b := range q.buckets {
		all = append(all, b...)
	}
	sort.Slice(all, func(i, j int) bool { return eventHeap(nil).less(all[i], all[j]) })
	width := q.width
	if len(all) > 1 {
		sample := len(all)
		if sample > 64 {
			sample = 64
		}
		if gap := all[sample-1].at - all[0].at; gap > 0 {
			// A window holds ~3 events on average: wide enough that
			// the cursor rarely walks empty buckets, narrow enough
			// that insertion sorts stay short.
			width = 3 * gap / time.Duration(sample-1)
		}
	}
	q.buckets = make([][]*event, nbuckets)
	q.width = width
	q.n = 0
	q.cur, q.curStart = 0, 0
	for _, e := range all {
		q.push(e)
	}
}
