package sim

import (
	"testing"
	"time"
)

func TestCondSignalWakesOneFIFO(t *testing.T) {
	k := New(1)
	c := NewCond(k)
	var woken []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		k.Spawn(name, func(ctx *Ctx) {
			c.Wait(ctx)
			woken = append(woken, name)
		})
	}
	k.After(time.Second, func() { c.Signal() })
	k.After(2*time.Second, func() { c.Signal() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woken) != 2 || woken[0] != "w1" || woken[1] != "w2" {
		t.Fatalf("woken = %v, want [w1 w2]", woken)
	}
	if c.Waiting() != 1 {
		t.Fatalf("waiting = %d, want 1", c.Waiting())
	}
}

func TestCondBroadcast(t *testing.T) {
	k := New(1)
	c := NewCond(k)
	n := 0
	for i := 0; i < 5; i++ {
		k.Spawn("w", func(ctx *Ctx) {
			c.Wait(ctx)
			n++
		})
	}
	k.After(time.Second, func() { c.Broadcast() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("woken = %d, want 5", n)
	}
}

func TestCondSignalNoWaiters(t *testing.T) {
	k := New(1)
	c := NewCond(k)
	if c.Signal() {
		t.Fatal("Signal with no waiters should report false")
	}
}

func TestCondWaitTimeout(t *testing.T) {
	k := New(1)
	c := NewCond(k)
	var ok1, ok2 bool
	var at1, at2 time.Duration
	k.Spawn("timeout", func(ctx *Ctx) {
		ok1 = c.WaitTimeout(ctx, time.Second)
		at1 = ctx.Now()
	})
	k.Spawn("signalled", func(ctx *Ctx) {
		ctx.Sleep(2 * time.Second)
		ok2 = c.WaitTimeout(ctx, 10*time.Second)
		at2 = ctx.Now()
	})
	k.After(3*time.Second, func() { c.Signal() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ok1 || at1 != time.Second {
		t.Fatalf("waiter 1: ok=%v at=%v, want timeout at 1s", ok1, at1)
	}
	if !ok2 || at2 != 3*time.Second {
		t.Fatalf("waiter 2: ok=%v at=%v, want signal at 3s", ok2, at2)
	}
}

func TestCondWaitTimeoutZero(t *testing.T) {
	k := New(1)
	c := NewCond(k)
	ok := true
	k.Spawn("p", func(ctx *Ctx) { ok = c.WaitTimeout(ctx, 0) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("zero timeout should report false immediately")
	}
}

func TestMailboxFIFO(t *testing.T) {
	k := New(1)
	m := NewMailbox(k)
	var got []int
	k.Spawn("recv", func(ctx *Ctx) {
		for i := 0; i < 3; i++ {
			v, ok := m.Recv(ctx)
			if !ok {
				t.Error("unexpected close")
				return
			}
			got = append(got, v.(int))
		}
	})
	k.After(time.Second, func() {
		m.Send(1)
		m.Send(2)
		m.Send(3)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
}

func TestMailboxClose(t *testing.T) {
	k := New(1)
	m := NewMailbox(k)
	m.Send(42)
	m.Close()
	var vals []any
	var oks []bool
	k.Spawn("recv", func(ctx *Ctx) {
		for i := 0; i < 2; i++ {
			v, ok := m.Recv(ctx)
			vals = append(vals, v)
			oks = append(oks, ok)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !oks[0] || vals[0].(int) != 42 {
		t.Fatalf("first recv = %v/%v, want 42/true", vals[0], oks[0])
	}
	if oks[1] {
		t.Fatal("second recv should report closed")
	}
}

func TestMailboxCloseWakesBlockedReceiver(t *testing.T) {
	k := New(1)
	m := NewMailbox(k)
	done := false
	k.Spawn("recv", func(ctx *Ctx) {
		_, ok := m.Recv(ctx)
		if ok {
			t.Error("expected closed")
		}
		done = true
	})
	k.After(time.Second, func() { m.Close() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("receiver never woke")
	}
}

func TestMailboxRecvTimeout(t *testing.T) {
	k := New(1)
	m := NewMailbox(k)
	var ok1, ok2 bool
	k.Spawn("p", func(ctx *Ctx) {
		_, ok1 = m.RecvTimeout(ctx, time.Second)
		_, ok2 = m.RecvTimeout(ctx, 5*time.Second)
	})
	k.After(3*time.Second, func() { m.Send("x") })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ok1 {
		t.Fatal("first recv should time out")
	}
	if !ok2 {
		t.Fatal("second recv should succeed")
	}
}

func TestMailboxTryRecv(t *testing.T) {
	k := New(1)
	m := NewMailbox(k)
	if _, ok := m.TryRecv(); ok {
		t.Fatal("TryRecv on empty should fail")
	}
	m.Send(7)
	if m.Len() != 1 {
		t.Fatalf("len = %d, want 1", m.Len())
	}
	v, ok := m.TryRecv()
	if !ok || v.(int) != 7 {
		t.Fatalf("TryRecv = %v/%v, want 7/true", v, ok)
	}
}

func TestMailboxSendAfterClosePanics(t *testing.T) {
	k := New(1)
	m := NewMailbox(k)
	m.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Send after Close")
		}
	}()
	m.Send(1)
}

func TestMailboxMultipleReceiversFIFO(t *testing.T) {
	k := New(1)
	m := NewMailbox(k)
	var got []string
	for _, name := range []string{"r1", "r2"} {
		name := name
		k.Spawn(name, func(ctx *Ctx) {
			v, ok := m.Recv(ctx)
			if !ok {
				return
			}
			got = append(got, name+":"+v.(string))
		})
	}
	k.After(time.Second, func() { m.Send("a") })
	k.After(2*time.Second, func() { m.Send("b") })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "r1:a" || got[1] != "r2:b" {
		t.Fatalf("got %v, want [r1:a r2:b]", got)
	}
}
