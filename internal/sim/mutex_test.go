package sim

import (
	"testing"
	"time"
)

func TestMutexExcludes(t *testing.T) {
	k := New(1)
	m := NewMutex(k)
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		k.Spawn("p", func(ctx *Ctx) {
			for j := 0; j < 5; j++ {
				m.Lock(ctx)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				ctx.Sleep(time.Millisecond)
				inside--
				m.Unlock()
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("max holders = %d, want 1", maxInside)
	}
	if m.Locked() {
		t.Fatal("mutex left locked")
	}
}

func TestMutexFIFO(t *testing.T) {
	k := New(1)
	m := NewMutex(k)
	var order []int
	// Holder takes the lock; three waiters queue in spawn order.
	k.Spawn("holder", func(ctx *Ctx) {
		m.Lock(ctx)
		ctx.Sleep(10 * time.Millisecond)
		m.Unlock()
	})
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn("w", func(ctx *Ctx) {
			ctx.Sleep(time.Duration(i+1) * time.Millisecond)
			m.Lock(ctx)
			order = append(order, i)
			m.Unlock()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestMutexUnlockUnlockedPanics(t *testing.T) {
	k := New(1)
	m := NewMutex(k)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Unlock()
}

func TestMutexUncontendedFast(t *testing.T) {
	k := New(1)
	m := NewMutex(k)
	var at time.Duration
	k.Spawn("p", func(ctx *Ctx) {
		m.Lock(ctx)
		m.Unlock()
		at = ctx.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 0 {
		t.Fatalf("uncontended lock took virtual time: %v", at)
	}
}
