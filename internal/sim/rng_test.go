package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(4)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	r := NewRNG(5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Intn(0)
}

func TestRNGExpFloat64Mean(t *testing.T) {
	r := NewRNG(6)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("ExpFloat64 mean = %v, want ~1", mean)
	}
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(7)
	sum, sumsq := 0.0, 0.0
	n := 100000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("NormFloat64 mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("NormFloat64 variance = %v, want ~1", variance)
	}
}

func TestRNGJitterRange(t *testing.T) {
	r := NewRNG(8)
	for i := 0; i < 10000; i++ {
		j := r.Jitter(0.1)
		if j < 0.9 || j > 1.1 {
			t.Fatalf("Jitter(0.1) out of range: %v", j)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(seed)
		n := 1 + int(uint64(seed)%50)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
