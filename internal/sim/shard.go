package sim

import "time"

// ShardExchange is the sanctioned cross-kernel communication interface
// for the sharded multi-kernel PDES runtime (see ROADMAP: grid-scale
// topology). In a sharded run, every piece of mutable simulation state
// is owned by exactly one kernel; the only way data crosses a shard
// boundary is a PostRemote call, which delivers a payload to the
// destination shard at a virtual time no earlier than the sender's
// Now plus the conservative lookahead (the WAN propagation delay of
// the cut link). That discipline is what keeps a partitioned run
// byte-identical to the single-kernel run.
//
// The interface lands ahead of the sharded runtime so that the
// shardsafety analyzer (internal/analysis/shardsafety) can whitelist
// it today: kernel-owned values may escape into an exchange
// implementation — its PostRemote method is the one sanctioned place
// that touches another shard's structures — and nowhere else. Code
// written against this contract now will drop into the sharded
// runtime unchanged.
type ShardExchange interface {
	// PostRemote hands payload to shard dst, to be applied at virtual
	// time at. Implementations must deliver payloads in a
	// deterministic order (sender shard, then post sequence) and must
	// reject at < sender.Now() + lookahead.
	PostRemote(dst int, at time.Duration, payload any)

	// Lookahead returns the conservative synchronization horizon: the
	// minimum virtual delay between posting and delivery. A sharded
	// kernel may safely run to LBTS + Lookahead before blocking.
	Lookahead() time.Duration
}

// LoopbackExchange is the degenerate single-kernel ShardExchange: it
// posts every payload back onto its own kernel's event queue. It gives
// pre-shard code a real exchange to write against (and the analyzer
// fixture something to model) while the multi-kernel runtime is built.
type LoopbackExchange struct {
	k         *Kernel
	lookahead time.Duration
	apply     func(dst int, payload any)
	seq       uint64
}

// NewLoopbackExchange wraps k. apply is invoked on the kernel's event
// loop when a posted payload comes due.
func NewLoopbackExchange(k *Kernel, lookahead time.Duration, apply func(dst int, payload any)) *LoopbackExchange {
	return &LoopbackExchange{k: k, lookahead: lookahead, apply: apply}
}

// PostRemote implements ShardExchange. Delivery order among same-time
// posts follows post sequence, so runs are reproducible.
func (x *LoopbackExchange) PostRemote(dst int, at time.Duration, payload any) {
	if min := x.k.Now() + x.lookahead; at < min {
		at = min
	}
	x.seq++
	x.k.AtFunc(at, PrioNet, loopbackDeliver, x, loopbackPost{dst: dst, payload: payload})
}

// Lookahead implements ShardExchange.
func (x *LoopbackExchange) Lookahead() time.Duration { return x.lookahead }

type loopbackPost struct {
	dst     int
	payload any
}

// loopbackDeliver is the prebound AtFunc callback (hot paths schedule
// without allocating closures; see docs/performance.md).
func loopbackDeliver(a0, a1 any) {
	x := a0.(*LoopbackExchange)
	post := a1.(loopbackPost)
	if x.apply != nil {
		x.apply(post.dst, post.payload)
	}
}

// Compile-time conformance.
var _ ShardExchange = (*LoopbackExchange)(nil)
