// Command garnet drives the reproduction experiments: it rebuilds the
// GARNET testbed in simulation and regenerates any table or figure
// from the paper's evaluation.
//
// Usage:
//
//	garnet -exp fig1|fig5|fig6|fig7|fig8|fig9|figF|figG|figH|figI|table1|isvsds|latency|ablations|all
//	       [-scale 1.0] [-seed 1] [-parallel N] [-svgdir dir]
//	       [-cpuprofile file] [-memprofile file]
//	garnet -topology
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"mpichgq/internal/experiments"
	"mpichgq/internal/garnet"
	"mpichgq/internal/spans"
	"mpichgq/internal/trace"
)

// svgDir, when set via -svgdir, receives one SVG figure per
// experiment in addition to the textual output.
var svgDir string

func main() {
	exp := flag.String("exp", "", "experiment id: fig1, fig5, fig6, fig7, fig8, fig9, figF, figG, figH, figI, table1, isvsds, latency, ablations, all")
	scale := flag.Float64("scale", 1.0, "time scale (1.0 = paper-length runs)")
	seed := flag.Int64("seed", 1, "simulation seed")
	topo := flag.Bool("topology", false, "print the testbed topology and exit")
	parallel := flag.Int("parallel", experiments.MaxParallel(),
		"worker count for sweep experiments (output is identical for any value)")
	fluid := flag.Bool("fluid", false,
		"run background contention in hybrid fluid/packet mode (order-of-magnitude faster; plateau within 2% of packet level)")
	traceOut := flag.String("trace", "",
		"write the experiment's causal spans as Chrome trace-event JSON to this file (fig5, figG, figH)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.StringVar(&svgDir, "svgdir", "", "directory to write SVG figures into (optional)")
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	if svgDir != "" {
		if err := os.MkdirAll(svgDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *topo {
		fmt.Print(garnet.New(*seed).Topology())
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	cfg := experiments.Config{Seed: *seed, TimeScale: *scale, Parallel: *parallel, FluidBackground: *fluid}
	if *traceOut != "" {
		cfg.Trace = spans.NewCollector()
	}
	run := func(id string) {
		switch id {
		case "fig1":
			runFig1(cfg)
		case "fig5":
			r := experiments.RunFigure5(cfg)
			tbl := experiments.Figure5Table(r)
			fmt.Print(tbl.String())
			var series []trace.Series
			for _, size := range r.MessageSizes {
				var xs, ys []float64
				for _, pt := range r.Curves[size] {
					xs = append(xs, pt.Reservation.Kbps())
					ys = append(ys, pt.Throughput.Kbps())
				}
				series = append(series, trace.XYSeries(fmt.Sprintf("%dKb msgs", size.Bits()/1000), xs, ys))
			}
			writeSVG("fig5", trace.Plot{
				Title:  "Figure 5: ping-pong throughput vs reservation",
				XLabel: "one-way reservation (Kb/s)", YLabel: "one-way throughput (Kb/s)",
				Series: series,
			})
		case "fig6":
			r := experiments.RunFigure6(cfg)
			tbl := experiments.Figure6Table(r)
			fmt.Print(tbl.String())
			var series []trace.Series
			for _, offered := range r.Offered {
				var xs, ys []float64
				for _, pt := range r.Curves[offered] {
					xs = append(xs, pt.Reservation.Kbps())
					ys = append(ys, pt.Achieved.Kbps())
				}
				series = append(series, trace.XYSeries(fmt.Sprintf("attempting %.0fKb/s", offered.Kbps()), xs, ys))
			}
			writeSVG("fig6", trace.Plot{
				Title:  "Figure 6: visualization app vs reservation",
				XLabel: "reservation (Kb/s)", YLabel: "achieved (Kb/s)",
				Series: series,
			})
		case "fig7":
			runFig7(cfg)
		case "fig8":
			runFig8(cfg)
		case "fig9":
			runFig9(cfg)
		case "figF":
			runFigF(cfg)
		case "figG":
			runFigG(cfg)
		case "figH":
			runFigH(cfg)
		case "figI":
			runFigI(cfg)
		case "table1":
			fmt.Print(experiments.Table1Render(experiments.RunTable1(cfg)))
		case "isvsds":
			tbl := experiments.ISvsDSTable(experiments.RunISvsDS(cfg, 8))
			fmt.Print(tbl.String())
		case "latency":
			tbl := experiments.LatencyTable(experiments.RunLatency(cfg))
			fmt.Print(tbl.String())
		case "ablations":
			fmt.Print(experiments.AblationBucketDepth(cfg))
			fmt.Println()
			fmt.Print(experiments.AblationShaping(cfg))
			fmt.Println()
			fmt.Print(experiments.AblationEagerThreshold(cfg))
			fmt.Println()
			fmt.Print(experiments.AblationSocketBuffers(cfg))
			fmt.Println()
			fmt.Print(experiments.AblationOverheadFactor(cfg))
			fmt.Println()
			fmt.Print(experiments.AblationEraTCP(cfg))
			fmt.Println()
			fmt.Print(experiments.AblationFluidValidation(cfg))
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
	}
	if *exp == "all" {
		for _, id := range []string{"fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "figF", "figG", "figH", "figI", "table1", "isvsds", "latency", "ablations"} {
			fmt.Printf("=== %s ===\n", id)
			run(id)
			fmt.Println()
		}
	} else {
		run(*exp)
	}
	if cfg.Trace != nil {
		if err := writeTrace(*traceOut, cfg.Trace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("(wrote %s: %d traced sweep points)\n", *traceOut, cfg.Trace.Len())
	}
}

// writeTrace dumps the collected spans as a Chrome trace-event file.
func writeTrace(path string, col *spans.Collector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := col.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeSVG stores a plot when -svgdir is set.
func writeSVG(name string, p trace.Plot) {
	if svgDir == "" {
		return
	}
	path := filepath.Join(svgDir, name+".svg")
	if err := os.WriteFile(path, []byte(p.SVG()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	fmt.Printf("(wrote %s)\n", path)
}

func runFig1(cfg experiments.Config) {
	r := experiments.RunFigure1(cfg)
	fmt.Printf("Figure 1: TCP flow offered %v with a %v reservation under contention\n",
		r.Offered, r.Reserved)
	fmt.Printf("mean %v, oscillating %v..%v\n", r.Mean, r.Min, r.Max)
	fmt.Print(r.Bandwidth.String())
	writeSVG("fig1", trace.Plot{
		Title:  "Figure 1: TCP flow with a too-small reservation",
		XLabel: "time (s)", YLabel: "bandwidth (Kb/s)",
		Series: []trace.Series{r.Bandwidth},
	})
}

func runFig7(cfg experiments.Config) {
	r := experiments.RunFigure7(cfg)
	fmt.Println("Figure 7: TCP sequence traces, both at 400 Kb/s (1 s window)")
	fmt.Printf("10 fps x 40 Kb frames: %d segments, max 100 ms burst %v\n",
		len(r.Smooth), r.SmoothBurst)
	for _, p := range r.Smooth {
		fmt.Printf("  %.3f\t%.1f Kb%s\n", p.T.Seconds(), float64(p.Seq)*8/1000, retxMark(p.Retx))
	}
	fmt.Printf("1 fps x 400 Kb frames: %d segments, max 100 ms burst %v\n",
		len(r.Bursty), r.BurstyBurst)
	for _, p := range r.Bursty {
		fmt.Printf("  %.3f\t%.1f Kb%s\n", p.T.Seconds(), float64(p.Seq)*8/1000, retxMark(p.Retx))
	}
	seqSeries := func(name string, pts []trace.SeqPoint) trace.Series {
		s := trace.Series{Name: name}
		for _, p := range pts {
			s.Points = append(s.Points, trace.Point{T: p.T, V: float64(p.Seq) * 8 / 1000})
		}
		return s
	}
	writeSVG("fig7", trace.Plot{
		Title:  "Figure 7: sequence traces, 400 Kb/s at two burstiness levels",
		XLabel: "time (s)", YLabel: "sequence number (Kb)",
		Scatter: true,
		Series: []trace.Series{
			seqSeries("10 fps x 40Kb", r.Smooth),
			seqSeries("1 fps x 400Kb", r.Bursty),
		},
	})
}

func retxMark(retx bool) string {
	if retx {
		return "  (retransmit)"
	}
	return ""
}

func runFigF(cfg experiments.Config) {
	r := experiments.RunFigureF(cfg)
	fmt.Printf("Figure F: %v premium flow through a WAN flap (down %.0fs..%.0fs) under %v contention\n",
		r.Target, r.Down.Seconds(), r.Up.Seconds(), experiments.ContentionRate)
	fmt.Print(experiments.FigureFTable(r).String())
	fmt.Printf("watchdog: %d repairs, %d fallbacks, %d upgrades\n", r.Repairs, r.Fallbacks, r.Upgrades)
	fmt.Print(r.Healed.Series.String())
	writeSVG("figF", trace.Plot{
		Title:  "Figure F: self-healing QoS through a WAN link flap",
		XLabel: "time (s)", YLabel: "goodput (Kb/s)",
		Series: []trace.Series{r.NoQoS.Series, r.Static.Series, r.Healed.Series},
	})
}

func runFigG(cfg experiments.Config) {
	r := experiments.RunFigureG(cfg)
	fmt.Println("Figure G: two-domain co-reservation over a lossy control plane (with one RM crash/restart)")
	fmt.Print(experiments.FigureGTable(r).String())
	rate := func(pts []experiments.FigureGPoint, name string) trace.Series {
		var xs, ys []float64
		for _, p := range pts {
			xs = append(xs, 100*p.Loss)
			ys = append(ys, 100*p.SuccessRate)
		}
		return trace.XYSeries(name, xs, ys)
	}
	leak := func(pts []experiments.FigureGPoint, name string) trace.Series {
		var xs, ys []float64
		for _, p := range pts {
			xs = append(xs, 100*p.Loss)
			ys = append(ys, p.LeakMB)
		}
		return trace.XYSeries(name, xs, ys)
	}
	writeSVG("figG-success", trace.Plot{
		Title:  "Figure G: co-reservation success vs control-channel loss",
		XLabel: "control-channel loss (%)", YLabel: "success rate (%)",
		Series: []trace.Series{rate(r.TwoPhase, "two-phase + leases"), rate(r.Naive, "naive")},
	})
	writeSVG("figG-leak", trace.Plot{
		Title:  "Figure G: orphaned EF capacity vs control-channel loss",
		XLabel: "control-channel loss (%)", YLabel: "capacity leak (MB)",
		Series: []trace.Series{leak(r.TwoPhase, "two-phase + leases"), leak(r.Naive, "naive")},
	})
}

func runFigH(cfg experiments.Config) {
	r := experiments.RunFigureH(cfg)
	fmt.Println("Figure H: job survival and time-to-recover vs rank MTBF (worker crash/restart, with and without checkpointing)")
	fmt.Print(experiments.FigureHTable(r).String())
	survival := func(pts []experiments.FigureHPoint, name string) trace.Series {
		var xs, ys []float64
		for _, p := range pts {
			xs = append(xs, p.MTBF.Seconds())
			ys = append(ys, 100*p.SurvivalRate)
		}
		return trace.XYSeries(name, xs, ys)
	}
	ttr := func(pts []experiments.FigureHPoint, name string) trace.Series {
		var xs, ys []float64
		for _, p := range pts {
			xs = append(xs, p.MTBF.Seconds())
			ys = append(ys, p.MeanTTR.Seconds())
		}
		return trace.XYSeries(name, xs, ys)
	}
	writeSVG("figH-survival", trace.Plot{
		Title:  "Figure H: job survival rate vs rank MTBF",
		XLabel: "rank MTBF (s)", YLabel: "survival rate (%)",
		Series: []trace.Series{survival(r.Ckpt, "checkpointed"), survival(r.NoCkpt, "no checkpoints")},
	})
	writeSVG("figH-ttr", trace.Plot{
		Title:  "Figure H: mean time-to-recover vs rank MTBF",
		XLabel: "rank MTBF (s)", YLabel: "time to recover (s)",
		Series: []trace.Series{ttr(r.Ckpt, "checkpointed"), ttr(r.NoCkpt, "no checkpoints")},
	})
}

func runFigI(cfg experiments.Config) {
	r := experiments.RunFigureI(cfg)
	fmt.Println("Figure I: admission-storm goodput and p99 latency vs offered load, overload controls on vs off")
	fmt.Print(experiments.FigureITable(r).String())
	goodput := func(pts []experiments.FigureIPoint, name string) trace.Series {
		var xs, ys []float64
		for _, p := range pts {
			xs = append(xs, p.Mult)
			ys = append(ys, p.GoodputRPS)
		}
		return trace.XYSeries(name, xs, ys)
	}
	p99 := func(pts []experiments.FigureIPoint, name string) trace.Series {
		var xs, ys []float64
		for _, p := range pts {
			xs = append(xs, p.Mult)
			ys = append(ys, float64(p.P99.Milliseconds()))
		}
		return trace.XYSeries(name, xs, ys)
	}
	writeSVG("figI-goodput", trace.Plot{
		Title:  "Figure I: admitted goodput vs offered load",
		XLabel: "offered load (x broker capacity)", YLabel: "admitted goodput (req/s)",
		Series: []trace.Series{goodput(r.Controls, "overload controls"), goodput(r.NoCtrl, "no controls")},
	})
	writeSVG("figI-p99", trace.Plot{
		Title:  "Figure I: p99 admission latency vs offered load",
		XLabel: "offered load (x broker capacity)", YLabel: "p99 admission latency (ms)",
		Series: []trace.Series{p99(r.Controls, "overload controls"), p99(r.NoCtrl, "no controls")},
	})
}

func runFig8(cfg experiments.Config) {
	r := experiments.RunFigure8(cfg)
	fmt.Println("Figure 8: CPU contention at 10 s, 90% DSRT reservation at 20 s")
	t := trace.Table{Headers: []string{"phase", "mean bandwidth"}}
	t.Add("quiet (0-10s)", r.QuietMean.String())
	t.Add("CPU contention (10-20s)", r.ContendedMean.String())
	t.Add("CPU reservation (20-30s)", r.ReservedMean.String())
	fmt.Print(t.String())
	fmt.Print(r.Bandwidth.String())
	writeSVG("fig8", trace.Plot{
		Title:  "Figure 8: CPU contention at 10s, DSRT reservation at 20s",
		XLabel: "time (s)", YLabel: "bandwidth (Kb/s)",
		Series: []trace.Series{r.Bandwidth},
	})
}

func runFig9(cfg experiments.Config) {
	r := experiments.RunFigure9(cfg)
	fmt.Println("Figure 9: 35 Mb/s stream; net congestion @10s, net reservation @20s, CPU contention @30s, CPU reservation @40s")
	t := trace.Table{Headers: []string{"phase", "mean bandwidth"}}
	t.Add("clean (0-10s)", r.Clean.String())
	t.Add("network congestion (10-20s)", r.NetCongested.String())
	t.Add("network reservation (20-30s)", r.NetReserved.String())
	t.Add("+CPU contention (30-40s)", r.CPUContended.String())
	t.Add("+CPU reservation (40-50s)", r.CPUReserved.String())
	fmt.Print(t.String())
	fmt.Print(r.Bandwidth.String())
	writeSVG("fig9", trace.Plot{
		Title:  "Figure 9: network and CPU reservations combined",
		XLabel: "time (s)", YLabel: "bandwidth (Kb/s)",
		Series: []trace.Series{r.Bandwidth},
	})
}
