package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mpichgq/internal/metrics"
	"mpichgq/internal/sim"
	"mpichgq/internal/spans"
)

// daemon owns the scenario kernel and serves its observability state.
// mu serializes every touch of live kernel state: the stepper holds it
// while advancing virtual time, and /metrics, /events, and /healthz
// hold it while reading (the metrics registry resolves GaugeFunc
// closures against live simulation objects). /traces reads only the
// tracer's completed-span ring, which carries its own lock.
type daemon struct {
	scenario string
	dur      time.Duration

	mu sync.Mutex
	k  *sim.Kernel
	// extras, when set by the scenario builder, adds scenario-specific
	// health fields (admission queue depths, brownout levels) to the
	// /healthz body. Called under mu.
	extras func(map[string]any)

	done     atomic.Bool
	panicked atomic.Bool
	failure  atomic.Value // error string from a failed RunUntil or a panic
}

// step advances the kernel to dur in fixed virtual slices, sleeping
// pace of real time between slices so operators can watch the state
// evolve. It is the only writer of kernel state. A scenario that halts
// (RunUntil error) or panics mid-run leaves the daemon serving its
// last coherent state, with /healthz reporting the failure as 503.
func (d *daemon) step(step, pace time.Duration) {
	defer d.done.Store(true)
	// One virtual slice per call; the deferred recover keeps a panicking
	// scenario from killing the whole daemon — the mutex is released in
	// order, the failure is recorded, and the daemon serves its last
	// coherent state with /healthz reporting 503.
	advance := func() (finished bool) {
		d.mu.Lock()
		defer d.mu.Unlock()
		defer func() {
			if r := recover(); r != nil {
				d.panicked.Store(true)
				d.failure.Store(fmt.Sprint(r))
				finished = true
			}
		}()
		now := d.k.Now()
		if now >= d.dur {
			return true
		}
		next := now + step
		if next > d.dur {
			next = d.dur
		}
		if err := d.k.RunUntil(next); err != nil {
			// The kernel converts process panics into RunUntil errors;
			// classify them so /healthz distinguishes a crashed scenario
			// from one that halted on an ordinary error.
			if strings.Contains(err.Error(), "panicked") {
				d.panicked.Store(true)
			}
			d.failure.Store(err.Error())
			return true
		}
		return false
	}
	for !advance() {
		if pace > 0 {
			//lint:ignore determinism pacing is wall-clock by design: it throttles how fast the daemon replays virtual time, and never feeds back into the simulation
			time.Sleep(pace)
		}
	}
}

// mux wires the endpoint set (split out so tests can serve it).
func (d *daemon) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("/healthz", d.handleHealthz)
	m.HandleFunc("/metrics", d.handleMetrics)
	m.HandleFunc("/traces", d.handleTraces)
	m.HandleFunc("/events", d.handleEvents)
	return m
}

func (d *daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	tr := d.k.Tracer()
	resp := map[string]any{
		"status":         "ok",
		"scenario":       d.scenario,
		"virtual_dur_ns": d.dur.Nanoseconds(),
		"done":           d.done.Load(),
		"spans":          tr.Len(),
		"spans_active":   tr.Active(),
		"spans_dropped":  tr.Dropped(),
	}
	d.mu.Lock()
	resp["virtual_now_ns"] = d.k.Now().Nanoseconds()
	if d.extras != nil {
		d.extras(resp)
	}
	d.mu.Unlock()
	// A scenario that stopped advancing before its horizon is not a
	// healthy daemon: load balancers and the smoke job read 503 here.
	code := http.StatusOK
	if err := d.failure.Load(); err != nil {
		if d.panicked.Load() {
			resp["status"] = "panicked"
		} else {
			resp["status"] = "halted"
		}
		resp["error"] = err
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(resp)
}

func (d *daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	defer d.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = d.k.Metrics().WritePrometheus(w)
}

// handleTraces answers span queries. Parameters:
//
//	resv=<id>      spans of reservation <id>'s trace (decimal GARA id)
//	trace=<hex>    spans of an explicit trace ID
//	class=<c>      spans of one class: gara, rpc, server, co, wd, tcp, fault
//	name=<n>       exact span name (e.g. gara.lease)
//	subject=<s>    exact subject (domain, node, resource type)
//	status=<s>     ok | breached | failed | leaked
//	min_dur=<d>    at least this long (Go duration, virtual time)
//	limit=<n>      keep the most recent n matches (default 250)
//	format=<f>     json (default) or tree (indented text span tree)
func (d *daemon) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var f spans.Filter
	if v := q.Get("resv"); v != "" {
		id, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "gqd: resv must be a decimal reservation id", http.StatusBadRequest)
			return
		}
		f.Trace = spans.DeriveTrace(spans.NSReservation, id)
	}
	if v := q.Get("trace"); v != "" {
		t, ok := spans.ParseTraceID(v)
		if !ok {
			http.Error(w, "gqd: trace must be a hex trace id", http.StatusBadRequest)
			return
		}
		f.Trace = t
	}
	if v := q.Get("class"); v != "" {
		f.NamePrefix = v + "."
	}
	f.Name = q.Get("name")
	f.Subject = q.Get("subject")
	if v := q.Get("status"); v != "" {
		st, ok := spans.ParseStatus(v)
		if !ok {
			http.Error(w, "gqd: status must be ok, breached, failed, or leaked", http.StatusBadRequest)
			return
		}
		f.Status, f.HasStatus = st, true
	}
	if v := q.Get("min_dur"); v != "" {
		min, err := time.ParseDuration(v)
		if err != nil {
			http.Error(w, "gqd: min_dur must be a duration (e.g. 50ms)", http.StatusBadRequest)
			return
		}
		f.MinDur = min
	}
	f.Limit = 250
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			http.Error(w, "gqd: limit must be a positive integer", http.StatusBadRequest)
			return
		}
		f.Limit = n
	}
	matched := d.k.Tracer().Query(f)
	switch q.Get("format") {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		_ = spans.WriteJSON(w, matched)
	case "tree":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if len(matched) == 0 {
			_, _ = w.Write([]byte("(no matching spans)\n"))
			return
		}
		_ = spans.WriteTree(w, matched)
	default:
		http.Error(w, "gqd: format must be json or tree", http.StatusBadRequest)
	}
}

// eventJSON is the /events wire format for one flight-recorder record.
type eventJSON struct {
	Seq     uint64 `json:"seq"`
	AtNS    int64  `json:"at_ns"`
	Type    string `json:"type"`
	Subject string `json:"subject,omitempty"`
	V1      int64  `json:"v1"`
	V2      int64  `json:"v2"`
	V3      int64  `json:"v3"`
}

// handleEvents tails the flight recorder. Parameters: type (wire name,
// e.g. ctrl.rpc), subject, since (virtual duration), n (last N,
// default 250).
func (d *daemon) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := metrics.EventFilter{Subject: q.Get("subject"), Last: 250}
	if v := q.Get("type"); v != "" {
		t, ok := metrics.ParseEventType(v)
		if !ok {
			http.Error(w, "gqd: unknown event type "+strconv.Quote(v), http.StatusBadRequest)
			return
		}
		f.Type = t
	}
	if v := q.Get("since"); v != "" {
		since, err := time.ParseDuration(v)
		if err != nil {
			http.Error(w, "gqd: since must be a duration (e.g. 10s)", http.StatusBadRequest)
			return
		}
		f.Since = since
	}
	if v := q.Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			http.Error(w, "gqd: n must be a positive integer", http.StatusBadRequest)
			return
		}
		f.Last = n
	}
	d.mu.Lock()
	evs := d.k.Metrics().Events().Snapshot()
	d.mu.Unlock()
	evs = metrics.FilterEvents(evs, f)
	out := make([]eventJSON, 0, len(evs))
	for _, e := range evs {
		out = append(out, eventJSON{
			Seq: e.Seq, AtNS: e.At.Nanoseconds(), Type: e.Type.String(),
			Subject: e.Subject, V1: e.V1, V2: e.V2, V3: e.V3,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}
