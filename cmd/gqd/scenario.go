package main

import (
	"fmt"
	"time"

	gq "mpichgq/internal/core"
	"mpichgq/internal/ctrlplane"
	"mpichgq/internal/diffserv"
	"mpichgq/internal/faults"
	"mpichgq/internal/gara"
	"mpichgq/internal/garnet"
	"mpichgq/internal/mpi"
	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/trafficgen"
	"mpichgq/internal/units"
)

// traceCapacity sizes the daemon kernel's completed-span ring: the
// daemon exists to serve trace queries, so it retains more than the
// tracer default.
const traceCapacity = 1 << 16

// buildScenario constructs the requested live scenario on a fresh
// kernel, tracing enabled, ready to be stepped to dur. The returned
// extras hook (may be nil) adds scenario-specific health fields to
// /healthz; it is called under the daemon's kernel mutex.
func buildScenario(name string, seed int64, dur time.Duration) (*sim.Kernel, func(map[string]any), error) {
	switch name {
	case "fig5":
		return fig5Scenario(seed, dur), nil, nil
	case "ctrl":
		k, extras := ctrlScenario(seed, dur)
		return k, extras, nil
	default:
		return nil, nil, fmt.Errorf("gqd: unknown scenario %q (want fig5 or ctrl)", name)
	}
}

// fig5Scenario is the figure 5 workload, live: an MPI ping-pong pair
// with a premium reservation on the GARNET testbed under heavy UDP
// contention. It exercises GARA admission, diffserv policing, and the
// TCP stack, so /metrics shows live throughput and /traces carries
// gara.* and tcp.* spans.
func fig5Scenario(seed int64, dur time.Duration) *sim.Kernel {
	tb := garnet.New(seed)
	tb.K.Tracer().SetCapacity(traceCapacity)
	tb.K.Tracer().SetEnabled(true)

	b := &trafficgen.UDPBlaster{
		Rate:       160 * units.Mbps,
		PacketSize: 1000,
		Jitter:     0.1,
	}
	if err := b.Run(tb.CompSrc, tb.CompDst, 9000); err != nil {
		panic(err)
	}

	job := tb.NewMPIPair(tcpsim.DefaultOptions(), mpi.JobOptions{})
	agent := gq.NewAgent(tb.Gara, job)
	msgSize := 40 * units.Kbit
	job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
		pc, err := r.PairComm(ctx, 1-r.ID())
		if err != nil {
			panic(err)
		}
		attr := &gq.QosAttribute{Class: gq.Premium, Bandwidth: 8 * units.Mbps}
		if err := r.AttrPut(pc, agent.Keyval(), attr); err != nil {
			panic(fmt.Sprintf("gqd fig5 reservation: %v", err))
		}
		peer := 1 - r.RankIn(pc)
		for ctx.Now() < dur {
			if r.ID() == 0 {
				if err := r.Send(ctx, pc, peer, 0, msgSize, nil); err != nil {
					return
				}
				if _, err := r.Recv(ctx, pc, peer, 0); err != nil {
					return
				}
			} else {
				if _, err := r.Recv(ctx, pc, peer, 0); err != nil {
					return
				}
				if err := r.Send(ctx, pc, peer, 0, msgSize, nil); err != nil {
					return
				}
			}
		}
	})
	return tb.K
}

// ctrlScenario is the figure G control plane, live: two administrative
// domains behind a lossy control channel, an RM crash/restart, and a
// driver issuing two-phase co-reservations for the whole run, plus a
// tenant reservation storm pressing dom1's admission queue so queue
// depth, sheds, and brownout transitions stay visible in /metrics and
// /healthz. It keeps the co.*, rpc.*, server.*, gara.*, admission.*,
// and fault.* span streams flowing for /traces queries.
func ctrlScenario(seed int64, dur time.Duration) (*sim.Kernel, func(map[string]any)) {
	k := sim.New(seed)
	k.Tracer().SetCapacity(traceCapacity)
	k.Tracer().SetEnabled(true)
	n := netsim.New(k)
	hostA, e1, c1 := n.AddNode("hostA"), n.AddNode("e1"), n.AddNode("c1")
	c2, e2, hostB := n.AddNode("c2"), n.AddNode("e2"), n.AddNode("hostB")
	l1 := n.Connect(hostA, e1, 100*units.Mbps, time.Millisecond)
	l2 := n.Connect(e1, c1, 100*units.Mbps, time.Millisecond)
	border := n.Connect(c1, c2, 50*units.Mbps, 2*time.Millisecond)
	l4 := n.Connect(c2, e2, 100*units.Mbps, time.Millisecond)
	l5 := n.Connect(e2, hostB, 100*units.Mbps, time.Millisecond)
	n.ComputeRoutes()
	dom1 := diffserv.NewDomain(k)
	dom1.EnableEFAll(e1, c1)
	dom2 := diffserv.NewDomain(k)
	dom2.EnableEFAll(c2, e2)
	rm1 := gara.NewNetworkRM(n, dom1, 0.5)
	rm1.Scope = gara.LinkScope(l1, l2, border)
	rm2 := gara.NewNetworkRM(n, dom2, 0.5)
	rm2.Scope = gara.LinkScope(l4, l5)
	g1, g2 := gara.New(k), gara.New(k)
	g1.Register(rm1)
	g2.Register(rm2)

	plane := ctrlplane.NewPlane(k, ctrlplane.Options{
		Timeout:  50 * time.Millisecond,
		Deadline: 500 * time.Millisecond,
		LeaseTTL: 3 * time.Second,
		// Finite broker capacity (500 req/s per domain) with the full
		// overload-control ladder, so the storm below actually queues,
		// sheds, and browns out instead of executing instantaneously.
		Admission: ctrlplane.Admission{
			ServiceTime:  2 * time.Millisecond,
			QueueLimit:   32,
			CoDelTarget:  40 * time.Millisecond,
			DropExpired:  true,
			BrownoutHi:   24,
			BrownoutLo:   6,
			BrownoutHold: 2 * time.Second,
		},
	})
	plane.AddDomain("dom1", g1, rm1)
	plane.AddDomain("dom2", g2, rm2)
	co := plane.Coordinator()

	// Moderate loss the whole run, plus one crash/restart at 40%/50%
	// of the horizon — enough chaos that retries, rollbacks, and lease
	// expiries all appear in the trace stream.
	sc := faults.NewScenario("gqd-ctrl").
		CtrlLoss("dom1", 0, dur, 0.25).
		CtrlLoss("dom2", 0, dur, 0.25).
		CtrlCrash(dur*2/5, "dom2").
		CtrlRestart(dur/2, "dom2")
	sc.MustApplyWith(n, plane)

	k.Spawn("gqd-ctrl-driver", func(ctx *sim.Ctx) {
		for ctx.Now() < dur {
			spec := gara.Spec{
				Type:      gara.ResourceNetwork,
				Class:     gara.ClassPremium,
				Flow:      diffserv.MatchHostPair(hostA.Addr(), hostB.Addr(), netsim.ProtoUDP),
				Bandwidth: 10 * units.Mbps,
				Start:     ctx.Now(),
				Duration:  20 * time.Second,
			}
			mr, err := co.Reserve(ctx, spec)
			if err == nil {
				ctx.Sleep(time.Second)
				_ = mr.Cancel(ctx)
			}
			ctx.Sleep(1500 * time.Millisecond)
		}
	})

	// A tenant storm bursting past dom1's broker capacity: enough
	// pressure that admission queueing, shedding, and brownout all show
	// up live, while the premium co-reservation driver above keeps
	// succeeding through class protection.
	storm := &trafficgen.ReservationStorm{
		Conns:    []*ctrlplane.Conn{plane.AddTenantConn("dom1", "storm")},
		Rate:     650,
		Clients:  2,
		Adaptive: true,
		Stop:     dur,
		Spec: func(i int) gara.Spec {
			cls := gara.ClassBestEffort
			if i%3 == 0 {
				cls = gara.ClassNormal
			}
			return gara.Spec{
				Type:      gara.ResourceNetwork,
				Class:     cls,
				Flow:      diffserv.MatchHostPair(hostA.Addr(), c1.Addr(), netsim.ProtoUDP),
				Bandwidth: units.Mbps,
				Duration:  2 * time.Second,
			}
		},
	}
	storm.Run(k)

	srv1, srv2 := plane.Conn("dom1").Server(), plane.Conn("dom2").Server()
	extras := func(resp map[string]any) {
		resp["admission"] = map[string]any{
			"dom1": map[string]int{"queue_depth": srv1.QueueDepth(), "brownout_level": srv1.BrownoutLevel()},
			"dom2": map[string]int{"queue_depth": srv2.QueueDepth(), "brownout_level": srv2.BrownoutLevel()},
		}
	}
	return k, extras
}
