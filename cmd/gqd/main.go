// Command gqd is the live observability daemon: it runs a garnet
// scenario on a simulation kernel in the background and serves the
// observability layer over HTTP while the experiment executes.
//
//	gqd [-addr 127.0.0.1:7070] [-scenario fig5|ctrl] [-seed 1]
//	    [-dur 60s] [-step 250ms] [-pace 10ms]
//
// Endpoints:
//
//	/healthz  liveness + progress (virtual now, scenario, span counts)
//	/metrics  Prometheus text exposition of the kernel's registry
//	/traces   completed causal spans; query by resv, trace, class,
//	          name, subject, status, min_dur, limit; format=json|tree
//	/events   flight-recorder tail; filter by type, subject, since, n
//
// The kernel remains single-threaded: a stepper goroutine advances
// virtual time in -step slices under a mutex, and every handler that
// touches live kernel state takes the same mutex. The span ring and
// the flight recorder carry their own locks, so trace queries read
// concurrently with the simulation. -pace throttles wall-clock speed
// so operators can watch state evolve; 0 free-runs to the end, after
// which the daemon keeps serving the final state until SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "HTTP listen address (host:0 picks a free port, printed on startup)")
	scenario := flag.String("scenario", "fig5", "live scenario: fig5 (premium ping-pong under contention) or ctrl (two-domain co-reservation chaos)")
	seed := flag.Int64("seed", 1, "simulation seed")
	dur := flag.Duration("dur", 60*time.Second, "virtual duration of the scenario")
	step := flag.Duration("step", 250*time.Millisecond, "virtual time advanced per scheduling slice")
	pace := flag.Duration("pace", 10*time.Millisecond, "real time to sleep between slices (0 = free-run)")
	flag.Parse()

	k, extras, err := buildScenario(*scenario, *seed, *dur)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	d := &daemon{scenario: *scenario, dur: *dur, k: k, extras: extras}

	// The stepper drives the single-threaded kernel; handlers interleave
	// with it through d.mu, never concurrently with it.
	//lint:ignore determinism gqd is a host-side daemon wrapping the kernel; all kernel access is serialized by d.mu, so goroutine interleaving cannot reorder simulation events
	go d.step(*step, *pace)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: d.mux()}
	errc := make(chan error, 1)
	//lint:ignore determinism the HTTP accept loop is host-side I/O, outside the simulation
	go func() { errc <- srv.Serve(ln) }()
	fmt.Printf("gqd: scenario %s (seed %d, virtual %v) on http://%s\n",
		*scenario, *seed, *dur, ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shctx); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("gqd: shut down cleanly")
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
