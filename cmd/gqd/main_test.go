package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mpichgq/internal/sim"
)

// get fetches a path from the test server and returns status + body.
func get(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestDaemonServesConcurrentQueries pins the daemon's core concurrency
// contract: operator queries against all four endpoints run safely
// (-race clean) while the stepper goroutine is advancing the live
// kernel, and every response is well-formed.
func TestDaemonServesConcurrentQueries(t *testing.T) {
	const dur = 8 * time.Second // virtual
	k, extras, err := buildScenario("ctrl", 1, dur)
	if err != nil {
		t.Fatal(err)
	}
	d := &daemon{scenario: "ctrl", dur: dur, k: k, extras: extras}
	srv := httptest.NewServer(d.mux())
	defer srv.Close()

	stepped := make(chan struct{})
	go func() {
		defer close(stepped)
		d.step(100*time.Millisecond, 0)
	}()

	paths := []string{
		"/healthz",
		"/metrics",
		"/traces?limit=50",
		"/traces?class=co&format=tree",
		"/traces?class=rpc&status=ok",
		"/traces?min_dur=1ms&limit=10",
		"/events?n=20",
		"/events?type=ctrl.rpc",
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				for _, p := range paths {
					code, body := get(t, srv.URL, p)
					if code != http.StatusOK {
						t.Errorf("GET %s: status %d: %s", p, code, body)
					}
					if len(body) == 0 {
						t.Errorf("GET %s: empty body", p)
					}
				}
			}
		}()
	}
	wg.Wait()
	<-stepped

	// With the scenario finished, the final state must be coherent:
	// healthz reports done at the full horizon, and the trace stream
	// holds the co-reservation story.
	code, body := get(t, srv.URL, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("final /healthz: status %d: %s", code, body)
	}
	var h struct {
		Status string `json:"status"`
		Done   bool   `json:"done"`
		NowNS  int64  `json:"virtual_now_ns"`
		Spans  int    `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("final /healthz: %v", err)
	}
	if h.Status != "ok" || !h.Done || h.NowNS != dur.Nanoseconds() {
		t.Fatalf("final /healthz: %+v", h)
	}
	if h.Spans == 0 {
		t.Fatal("scenario completed with no spans recorded")
	}
	code, body = get(t, srv.URL, "/traces?name=co.reserve")
	if code != http.StatusOK {
		t.Fatalf("/traces?name=co.reserve: status %d", code)
	}
	var sp []struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal([]byte(body), &sp); err != nil {
		t.Fatalf("/traces?name=co.reserve: %v", err)
	}
	if len(sp) == 0 {
		t.Fatal("no co.reserve spans after a full ctrl run")
	}
}

// TestDaemonBadQueries pins the 400 paths so operator typos fail with
// a usable message instead of an empty match.
func TestDaemonBadQueries(t *testing.T) {
	k, _, err := buildScenario("ctrl", 1, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	d := &daemon{scenario: "ctrl", dur: time.Second, k: k}
	srv := httptest.NewServer(d.mux())
	defer srv.Close()

	bad := []string{
		"/traces?resv=notanumber",
		"/traces?trace=zz",
		"/traces?status=bogus",
		"/traces?min_dur=fast",
		"/traces?limit=0",
		"/traces?format=xml",
		"/events?type=bogus",
		"/events?since=yesterday",
		"/events?n=-1",
	}
	for _, p := range bad {
		code, body := get(t, srv.URL, p)
		if code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", p, code)
		}
		if !strings.HasPrefix(body, "gqd: ") {
			t.Errorf("GET %s: error body %q does not explain the parameter", p, body)
		}
	}
}

// TestBuildScenarioUnknown covers the scenario dispatch error.
func TestBuildScenarioUnknown(t *testing.T) {
	if _, _, err := buildScenario("fig99", 1, time.Second); err == nil {
		t.Fatal("buildScenario accepted an unknown scenario")
	}
}

// TestHealthzReportsPanickedScenario pins the failure contract: when a
// scenario process panics mid-run the daemon survives, keeps serving
// its last coherent state, and /healthz turns 503 with a JSON body
// naming the failure.
func TestHealthzReportsPanickedScenario(t *testing.T) {
	k := sim.New(1)
	k.Spawn("bomb", func(ctx *sim.Ctx) {
		ctx.Sleep(time.Second)
		panic("scenario wedged: simulated invariant violation")
	})
	d := &daemon{scenario: "bomb", dur: 10 * time.Second, k: k}
	srv := httptest.NewServer(d.mux())
	defer srv.Close()

	d.step(500*time.Millisecond, 0)
	if !d.done.Load() {
		t.Fatal("step did not mark the daemon done after the panic")
	}
	code, body := get(t, srv.URL, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz after panic: status %d, want 503: %s", code, body)
	}
	var h struct {
		Status string `json:"status"`
		Error  string `json:"error"`
		Done   bool   `json:"done"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz after panic is not JSON: %v: %s", err, body)
	}
	if h.Status != "panicked" || !h.Done {
		t.Fatalf("/healthz after panic: %+v", h)
	}
	if !strings.Contains(h.Error, "invariant violation") {
		t.Fatalf("/healthz error %q does not carry the panic message", h.Error)
	}
	// The rest of the observability surface must still answer.
	if code, _ := get(t, srv.URL, "/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics after panic: status %d", code)
	}
}

// TestHealthzCarriesAdmissionState pins the ctrl scenario's healthz
// extras: queue depth and brownout level per domain appear in the body.
func TestHealthzCarriesAdmissionState(t *testing.T) {
	const dur = 3 * time.Second
	k, extras, err := buildScenario("ctrl", 1, dur)
	if err != nil {
		t.Fatal(err)
	}
	if extras == nil {
		t.Fatal("ctrl scenario returned no healthz extras")
	}
	d := &daemon{scenario: "ctrl", dur: dur, k: k, extras: extras}
	srv := httptest.NewServer(d.mux())
	defer srv.Close()
	d.step(time.Second, 0)
	code, body := get(t, srv.URL, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz: status %d: %s", code, body)
	}
	var h struct {
		Admission map[string]struct {
			QueueDepth    *int `json:"queue_depth"`
			BrownoutLevel *int `json:"brownout_level"`
		} `json:"admission"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz: %v: %s", err, body)
	}
	for _, dom := range []string{"dom1", "dom2"} {
		st, ok := h.Admission[dom]
		if !ok || st.QueueDepth == nil || st.BrownoutLevel == nil {
			t.Fatalf("/healthz admission state missing for %s: %s", dom, body)
		}
	}
}
