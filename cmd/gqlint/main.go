// Command gqlint is the multichecker driver for the repository's
// custom analyzer suite (internal/analysis): determinism,
// poolownership, spanlifecycle, hotpathalloc, unitsafety, and
// shardsafety. It loads and
// type-checks packages with only the standard library (no module
// proxy required), applies every analyzer, honours //lint:ignore
// suppressions, and exits nonzero if any diagnostic remains.
//
// Usage:
//
//	gqlint [-tests] [-only name,name] [-json] [-keep-stale] [-help-analyzers] packages...
//
// where packages are directories or `./...` patterns, e.g.
//
//	go run ./cmd/gqlint ./...
//
// -json emits one JSON object per diagnostic (file, line, analyzer,
// message, suppressed) including suppressed findings, so CI can archive
// the full inventory. Stale //lint:ignore directives — ones that no
// longer suppress anything — are reported as findings unless
// -keep-stale is given.
//
// See docs/static-analysis.md for the invariant catalogue and the
// suppression policy.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"mpichgq/internal/analysis"
	"mpichgq/internal/analysis/determinism"
	"mpichgq/internal/analysis/hotpathalloc"
	"mpichgq/internal/analysis/poolownership"
	"mpichgq/internal/analysis/shardsafety"
	"mpichgq/internal/analysis/spanlifecycle"
	"mpichgq/internal/analysis/unitsafety"
)

var all = []*analysis.Analyzer{
	determinism.Analyzer,
	hotpathalloc.Analyzer,
	poolownership.Analyzer,
	shardsafety.Analyzer,
	spanlifecycle.Analyzer,
	unitsafety.Analyzer,
}

func main() {
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON Lines, including suppressed findings")
	keepStale := flag.Bool("keep-stale", false, "do not report stale //lint:ignore directives")
	describe := flag.Bool("help-analyzers", false, "print each analyzer's documentation and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gqlint [flags] packages...\n\npatterns are directories or ./... forms\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, firstLine(a.Doc))
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *describe {
		for _, a := range all {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "gqlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gqlint: %v\n", err)
		os.Exit(2)
	}
	loader.IncludeTests = *tests

	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gqlint: %v\n", err)
		os.Exit(2)
	}

	ran := make([]string, len(analyzers))
	for i, a := range analyzers {
		ran[i] = a.Name
	}

	found := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunAll(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gqlint: %v\n", err)
			os.Exit(2)
		}
		if !*keepStale {
			stale := analysis.StaleSuppressions(pkg, diags, ran, *only == "")
			if len(stale) > 0 {
				diags = append(diags, stale...)
				sort.Slice(diags, func(i, j int) bool {
					if diags[i].Pos != diags[j].Pos {
						return diags[i].Pos < diags[j].Pos
					}
					return diags[i].Analyzer < diags[j].Analyzer
				})
			}
		}
		if *jsonOut {
			if err := writeJSON(os.Stdout, pkg.Fset, diags); err != nil {
				fmt.Fprintf(os.Stderr, "gqlint: %v\n", err)
				os.Exit(2)
			}
		}
		for _, d := range diags {
			if d.Suppressed {
				continue
			}
			if !*jsonOut {
				pos := pkg.Fset.Position(d.Pos)
				fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
			}
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "gqlint: %d diagnostic(s)\n", found)
		os.Exit(1)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
