package main

import (
	"encoding/json"
	"go/token"
	"io"

	"mpichgq/internal/analysis"
)

// jsonDiagnostic is the wire form of one finding in -json mode: one
// object per output line (JSON Lines), so CI can collect the full
// diagnostic inventory — including suppressed findings, which the text
// mode hides — as a build artifact and diff it between revisions.
type jsonDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// writeJSON encodes diags to w, one JSON object per line, in the order
// given (RunAll output is already position-sorted).
func writeJSON(w io.Writer, fset *token.FileSet, diags []analysis.Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		jd := jsonDiagnostic{
			File:       pos.Filename,
			Line:       pos.Line,
			Analyzer:   d.Analyzer,
			Message:    d.Message,
			Suppressed: d.Suppressed,
		}
		if err := enc.Encode(jd); err != nil {
			return err
		}
	}
	return nil
}
