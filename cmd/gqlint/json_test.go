package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"mpichgq/internal/analysis"
)

func TestWriteJSON(t *testing.T) {
	fset := token.NewFileSet()
	f := fset.AddFile("pkg/file.go", -1, 1000)
	// Line starts at offsets 0, 10, 20 -> lines 1, 2, 3.
	f.SetLines([]int{0, 10, 20})

	diags := []analysis.Diagnostic{
		{Pos: f.Pos(0), Analyzer: "shardsafety", Message: "package-level state x is written outside init"},
		{Pos: f.Pos(10), Analyzer: "poolownership", Message: `message with "quotes" and \backslashes\`, Suppressed: true},
		{Pos: f.Pos(20), Analyzer: "suppression", Message: "stale //lint:ignore determinism directive: it suppresses nothing; delete it"},
	}

	var buf bytes.Buffer
	if err := writeJSON(&buf, fset, diags); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(diags) {
		t.Fatalf("got %d output lines, want %d:\n%s", len(lines), len(diags), buf.String())
	}
	for i, line := range lines {
		var got jsonDiagnostic
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		if got.File != "pkg/file.go" {
			t.Errorf("line %d: file = %q", i+1, got.File)
		}
		if got.Line != i+1 {
			t.Errorf("line %d: line = %d, want %d", i+1, got.Line, i+1)
		}
		if got.Analyzer != diags[i].Analyzer {
			t.Errorf("line %d: analyzer = %q, want %q", i+1, got.Analyzer, diags[i].Analyzer)
		}
		if got.Message != diags[i].Message {
			t.Errorf("line %d: message = %q, want %q", i+1, got.Message, diags[i].Message)
		}
		if got.Suppressed != diags[i].Suppressed {
			t.Errorf("line %d: suppressed = %v, want %v", i+1, got.Suppressed, diags[i].Suppressed)
		}
	}

	// Field names are the stable wire contract CI scripts grep for.
	for _, key := range []string{`"file"`, `"line"`, `"analyzer"`, `"message"`, `"suppressed"`} {
		if !strings.Contains(lines[0], key) {
			t.Errorf("first line missing %s field:\n%s", key, lines[0])
		}
	}
}
