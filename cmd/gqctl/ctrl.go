package main

import (
	"flag"
	"fmt"
	"sort"
	"time"

	"mpichgq/internal/ctrlplane"
	"mpichgq/internal/diffserv"
	"mpichgq/internal/faults"
	"mpichgq/internal/gara"
	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/trace"
	"mpichgq/internal/trafficgen"
	"mpichgq/internal/units"
)

// ctrlCmd implements "gqctl ctrl": run a two-domain co-reservation
// workload over a lossy control plane (including one RM crash/restart)
// and dump the control-plane health view an operator would consult —
// per-RM breaker state, RPC retry/timeout counters, outstanding
// prepare leases, journal positions, and the overload-control surface
// (admission queue depth, brownout level, shed counters by reason)
// under a tenant reservation storm.
func ctrlCmd(args []string) {
	fs := flag.NewFlagSet("gqctl ctrl", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	until := fs.Duration("until", 20*time.Second, "virtual time to run the workload for")
	loss := fs.Float64("loss", 0.25, "control-channel loss probability during the first half of the run")
	stormRate := fs.Float64("storm", 650, "tenant reservation-storm arrival rate against dom1 (req/s; 0 disables)")
	must(fs.Parse(args))

	// Two administrative domains around a border link:
	//
	//	hostA - e1 - c1 ===border=== c2 - e2 - hostB
	k := sim.New(*seed)
	n := netsim.New(k)
	hostA, e1, c1 := n.AddNode("hostA"), n.AddNode("e1"), n.AddNode("c1")
	c2, e2, hostB := n.AddNode("c2"), n.AddNode("e2"), n.AddNode("hostB")
	l1 := n.Connect(hostA, e1, 100*units.Mbps, time.Millisecond)
	l2 := n.Connect(e1, c1, 100*units.Mbps, time.Millisecond)
	border := n.Connect(c1, c2, 50*units.Mbps, 2*time.Millisecond)
	l4 := n.Connect(c2, e2, 100*units.Mbps, time.Millisecond)
	l5 := n.Connect(e2, hostB, 100*units.Mbps, time.Millisecond)
	n.ComputeRoutes()

	dom1 := diffserv.NewDomain(k)
	dom1.EnableEFAll(e1, c1)
	dom2 := diffserv.NewDomain(k)
	dom2.EnableEFAll(c2, e2)
	rm1 := gara.NewNetworkRM(n, dom1, 0.5)
	rm1.Scope = gara.LinkScope(l1, l2, border)
	rm2 := gara.NewNetworkRM(n, dom2, 0.5)
	rm2.Scope = gara.LinkScope(l4, l5)
	g1, g2 := gara.New(k), gara.New(k)
	g1.Register(rm1)
	g2.Register(rm2)

	plane := ctrlplane.NewPlane(k, ctrlplane.Options{
		// Finite broker capacity with the overload-control ladder, so
		// the storm below exercises queueing, shedding, and brownout.
		Admission: ctrlplane.Admission{
			ServiceTime:  2 * time.Millisecond,
			QueueLimit:   32,
			CoDelTarget:  40 * time.Millisecond,
			DropExpired:  true,
			BrownoutHi:   24,
			BrownoutLo:   6,
			BrownoutHold: 2 * time.Second,
		},
	})
	plane.AddDomain("dom1", g1, rm1)
	plane.AddDomain("dom2", g2, rm2)
	co := plane.Coordinator()

	// Tenant storm against dom1: adaptive AIMD clients plus open-loop
	// Poisson arrivals, a best-effort-heavy class mix, short windows.
	var storm *trafficgen.ReservationStorm
	if *stormRate > 0 {
		storm = &trafficgen.ReservationStorm{
			Conns:    []*ctrlplane.Conn{plane.AddTenantConn("dom1", "storm")},
			Rate:     *stormRate,
			Clients:  2,
			Adaptive: true,
			Stop:     *until,
			Spec: func(i int) gara.Spec {
				cls := gara.ClassBestEffort
				if i%3 == 0 {
					cls = gara.ClassNormal
				}
				return gara.Spec{
					Type:      gara.ResourceNetwork,
					Class:     cls,
					Flow:      diffserv.MatchHostPair(hostA.Addr(), c1.Addr(), netsim.ProtoUDP),
					Bandwidth: units.Mbps,
					Duration:  2 * time.Second,
				}
			},
		}
		storm.Run(k)
	}

	// Chaos: lossy channels for the first half of the run, plus one RM
	// crash/restart a quarter of the way in.
	sc := faults.NewScenario("ctrl-chaos").
		CtrlLoss("dom1", 0, *until/2, *loss).
		CtrlLoss("dom2", 0, *until/2, *loss).
		CtrlCrash(*until/4, "dom2").
		CtrlRestart(*until/4+2*time.Second, "dom2")
	if _, err := sc.ApplyWith(n, plane); err != nil {
		must(err)
	}

	// Workload: sequential finite-window co-reservations, half of them
	// cancelled again, so the dump shows live slots, leases, and a
	// populated journal.
	var ok, failed int
	k.Spawn("workload", func(ctx *sim.Ctx) {
		for i := 0; ctx.Now() < *until-2*time.Second; i++ {
			spec := gara.Spec{
				Type: gara.ResourceNetwork,
				// Premium, so class protection carries the co-reservation
				// workload through the storm-driven brownout.
				Class:     gara.ClassPremium,
				Flow:      diffserv.MatchHostPair(hostA.Addr(), hostB.Addr(), netsim.ProtoUDP),
				Bandwidth: 5 * units.Mbps,
				Start:     ctx.Now(),
				Duration:  4 * time.Second,
			}
			mr, err := co.Reserve(ctx, spec)
			if err != nil {
				failed++
				ctx.Sleep(time.Second)
				continue
			}
			ok++
			ctx.Sleep(500 * time.Millisecond)
			if i%2 == 0 {
				_ = mr.Cancel(ctx)
			}
			ctx.Sleep(time.Second)
		}
	})
	must(k.RunUntil(*until))

	fmt.Printf("=== control plane at t=%v (seed %d, loss %.0f%% until %v) ===\n",
		k.Now(), *seed, 100**loss, *until/2)
	fmt.Printf("co-reservations: %d succeeded, %d failed\n\n", ok, failed)

	reg := k.Metrics()
	cv := func(name, rm string) int64 {
		v, _ := reg.CounterValue(name, "rm", rm)
		return v
	}
	t := trace.Table{Headers: []string{
		"domain", "breaker", "fails", "trips",
		"attempts", "retries", "timeouts", "deadline-fails", "rejects",
		"crashes", "leases", "journal-seq",
	}}
	rms := map[string]*gara.NetworkRM{"dom1": rm1, "dom2": rm2}
	for _, name := range plane.Names() {
		br := plane.Breaker(name)
		rm := rms[name]
		t.Add(name,
			br.State().String(), fmt.Sprint(br.Failures()),
			fmt.Sprint(cv("ctrl_breaker_trips_total", name)),
			fmt.Sprint(cv("ctrl_rpc_attempts_total", name)),
			fmt.Sprint(cv("ctrl_rpc_retries_total", name)),
			fmt.Sprint(cv("ctrl_rpc_timeouts_total", name)),
			fmt.Sprint(cv("ctrl_rpc_failures_total", name)),
			fmt.Sprint(cv("ctrl_rpc_breaker_rejects_total", name)),
			fmt.Sprint(cv("netrm_crashes_total", name)),
			fmt.Sprint(len(rm.Leases())),
			fmt.Sprint(rm.Journal.LastSeq()))
	}
	fmt.Print(t.String())

	// The overload-control surface: queue state and why requests were
	// turned away, per domain.
	shedReasons := []string{"full", "codel", "brownout", "expired", "crash", "evict"}
	ot := trace.Table{Headers: append([]string{
		"domain", "queue-depth", "brownout", "served",
	}, shedReasons...)}
	for _, name := range plane.Names() {
		srv := plane.Conn(name).Server()
		row := []string{
			name,
			fmt.Sprint(srv.QueueDepth()),
			fmt.Sprint(srv.BrownoutLevel()),
			fmt.Sprint(cv("admission_served_total", name)),
		}
		for _, reason := range shedReasons {
			v, _ := reg.CounterValue("admission_shed_total", "rm", name, "reason", reason)
			row = append(row, fmt.Sprint(v))
		}
		ot.Add(row...)
	}
	fmt.Println()
	fmt.Print(ot.String())
	if storm != nil {
		st := storm.Stats()
		fmt.Printf("\nstorm clients (dom1, %g req/s offered): %d offered, %d admitted, "+
			"%d overloaded, %d deadline-expired, %d refused\n",
			*stormRate, st.Offered, st.OK, st.Overloads, st.Deadlines, st.Refused)
		fmt.Printf("admitted by class: premium %d/%d, normal %d/%d, best-effort %d/%d\n",
			st.OKByClass[gara.ClassPremium], st.OfferedByClass[gara.ClassPremium],
			st.OKByClass[gara.ClassNormal], st.OfferedByClass[gara.ClassNormal],
			st.OKByClass[gara.ClassBestEffort], st.OfferedByClass[gara.ClassBestEffort])
	}

	for _, name := range plane.Names() {
		leases := rms[name].Leases()
		if len(leases) == 0 {
			continue
		}
		ids := make([]uint64, 0, len(leases))
		for id := range leases {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		fmt.Printf("\noutstanding leases on %s:\n", name)
		for _, id := range ids {
			fmt.Printf("  reservation %d expires at t=%v\n", id, leases[id])
		}
	}
}
