// Command gqctl demonstrates GARA administration against a live
// scenario: it builds the testbed, issues immediate and advance
// reservations across the three resource types, and dumps the
// resulting slot-table and router state at several points in virtual
// time — the view an external QoS agent or bandwidth-broker operator
// would have.
//
//	gqctl [-at 5s,15s,25s]
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"mpichgq/internal/diffserv"
	"mpichgq/internal/dsrt"
	"mpichgq/internal/gara"
	"mpichgq/internal/garnet"
	"mpichgq/internal/netsim"
	"mpichgq/internal/trace"
	"mpichgq/internal/units"
)

func main() {
	atFlag := flag.String("at", "5s,15s,25s", "comma-separated virtual times to dump state at")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	tb := garnet.New(*seed)
	cpu := dsrt.NewCPU(tb.K, "prem-src-cpu")
	task := cpu.NewTask("app")
	dpss := gara.NewDPSS(tb.K, "dpss", 100*units.Mbps)
	tb.Gara.Manager(gara.ResourceStorage) // registered by the testbed

	flow := diffserv.MatchHostPair(tb.PremSrc.Addr(), tb.PremDst.Addr(), netsim.ProtoTCP)

	// An immediate network reservation...
	r1, err := tb.Gara.Reserve(gara.Spec{
		Type: gara.ResourceNetwork, Flow: flow, Bandwidth: 40 * units.Mbps,
	})
	must(err)
	fmt.Printf("immediate network reservation %d: %v, window %v\n", r1.ID(), r1.State(), fmtWindow(r1))

	// ...an advance reservation for t=10s..20s...
	r2, err := tb.Gara.Reserve(gara.Spec{
		Type: gara.ResourceNetwork, Flow: flow, Bandwidth: 30 * units.Mbps,
		Start: 10 * time.Second, Duration: 10 * time.Second,
	})
	must(err)
	r2.OnChange(func(r *gara.Reservation, s gara.State) {
		fmt.Printf("  [t=%v] reservation %d -> %v\n", tb.K.Now(), r.ID(), s)
	})
	fmt.Printf("advance network reservation %d: %v, window %v\n", r2.ID(), r2.State(), fmtWindow(r2))

	// ...and a co-reservation of CPU + storage.
	rs, err := tb.Gara.CoReserve(
		gara.Spec{Type: gara.ResourceCPU, Task: task, Fraction: 0.8},
		gara.Spec{Type: gara.ResourceStorage, Store: dpss, ReadRate: 60 * units.Mbps},
	)
	must(err)
	fmt.Printf("co-reservation: cpu %d (%v) + storage %d (%v)\n\n",
		rs[0].ID(), rs[0].State(), rs[1].ID(), rs[1].State())

	var times []time.Duration
	for _, s := range strings.Split(*atFlag, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(s))
		must(err)
		times = append(times, d)
	}
	for _, at := range times {
		must(tb.K.RunUntil(at))
		dump(tb, task, dpss)
	}
}

func dump(tb *garnet.Testbed, task *dsrt.Task, dpss *gara.DPSS) {
	fmt.Printf("=== state at t=%v ===\n", tb.K.Now())
	t := trace.Table{Headers: []string{"link (direction)", "EF capacity", "committed", "utilization"}}
	for _, l := range tb.Net.Links() {
		for _, dir := range []struct {
			label string
			out   *netsim.Iface
		}{
			{l.A().Node().Name() + "->" + l.B().Node().Name(), l.A()},
			{l.B().Node().Name() + "->" + l.A().Node().Name(), l.B()},
		} {
			st := tb.NetRM.Table(dir.out)
			committed := st.CommittedAt(tb.K.Now())
			if committed == 0 {
				continue // only show directions carrying reservations
			}
			t.Add(dir.label,
				units.BitRate(st.Capacity()).String(),
				units.BitRate(committed).String(),
				fmt.Sprintf("%.0f%%", 100*committed/st.Capacity()))
		}
	}
	if len(t.Rows) == 0 {
		t.Add("(no network reservations)", "", "", "")
	}
	fmt.Print(t.String())
	fmt.Printf("DSRT: task %q reservation %.0f%%\n", task.Name(), 100*task.Reservation())
	fmt.Printf("DPSS: %v of %v reserved\n\n", dpss.ReservedRate(), dpss.Capacity())
}

func fmtWindow(r *gara.Reservation) string {
	s, e := r.Window()
	if e == gara.Forever {
		return fmt.Sprintf("[%v, forever)", s)
	}
	return fmt.Sprintf("[%v, %v)", s, e)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
