// Command gqctl demonstrates GARA administration against a live
// scenario: it builds the testbed, issues immediate and advance
// reservations across the three resource types, and dumps the
// resulting slot-table and router state at several points in virtual
// time — the view an external QoS agent or bandwidth-broker operator
// would have.
//
//	gqctl [-at 5s,15s,25s]
//	gqctl metrics [-format prom|json] [-until 25s]
//	gqctl events [-type tcp-segment] [-subject prem-src] [-since 10s] [-n 50]
//	gqctl trace [-until 25s] <resv-id>
//	gqctl ctrl [-seed 1] [-until 20s] [-loss 0.25]
//
// The metrics, events, and trace subcommands run the same scenario and
// then dump the observability layer: metrics renders the registry in
// Prometheus text or JSON snapshot format; events lists the flight
// recorder; trace prints the causal span tree of one reservation's
// lifecycle (see docs/observability.md). The ctrl subcommand runs a
// two-domain co-reservation workload over a lossy control plane and
// dumps its health: breaker states, retry/timeout counters,
// outstanding leases, and journal positions (see
// docs/control-plane.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mpichgq/internal/diffserv"
	"mpichgq/internal/dsrt"
	"mpichgq/internal/gara"
	"mpichgq/internal/garnet"
	"mpichgq/internal/metrics"
	"mpichgq/internal/netsim"
	"mpichgq/internal/spans"
	"mpichgq/internal/trace"
	"mpichgq/internal/units"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "metrics":
			metricsCmd(os.Args[2:])
			return
		case "events":
			eventsCmd(os.Args[2:])
			return
		case "trace":
			traceCmd(os.Args[2:])
			return
		case "ctrl":
			ctrlCmd(os.Args[2:])
			return
		}
	}
	atFlag := flag.String("at", "5s,15s,25s", "comma-separated virtual times to dump state at")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	tb := garnet.New(*seed)
	cpu := dsrt.NewCPU(tb.K, "prem-src-cpu")
	task := cpu.NewTask("app")
	dpss := gara.NewDPSS(tb.K, "dpss", 100*units.Mbps)
	tb.Gara.Manager(gara.ResourceStorage) // registered by the testbed

	flow := diffserv.MatchHostPair(tb.PremSrc.Addr(), tb.PremDst.Addr(), netsim.ProtoTCP)

	// An immediate network reservation...
	r1, err := tb.Gara.Reserve(gara.Spec{
		Type: gara.ResourceNetwork, Flow: flow, Bandwidth: 40 * units.Mbps,
	})
	must(err)
	fmt.Printf("immediate network reservation %d: %v, window %v\n", r1.ID(), r1.State(), fmtWindow(r1))

	// ...an advance reservation for t=10s..20s...
	r2, err := tb.Gara.Reserve(gara.Spec{
		Type: gara.ResourceNetwork, Flow: flow, Bandwidth: 30 * units.Mbps,
		Start: 10 * time.Second, Duration: 10 * time.Second,
	})
	must(err)
	r2.OnChange(func(r *gara.Reservation, s gara.State) {
		fmt.Printf("  [t=%v] reservation %d -> %v\n", tb.K.Now(), r.ID(), s)
	})
	fmt.Printf("advance network reservation %d: %v, window %v\n", r2.ID(), r2.State(), fmtWindow(r2))

	// ...and a co-reservation of CPU + storage.
	rs, err := tb.Gara.CoReserve(
		gara.Spec{Type: gara.ResourceCPU, Task: task, Fraction: 0.8},
		gara.Spec{Type: gara.ResourceStorage, Store: dpss, ReadRate: 60 * units.Mbps},
	)
	must(err)
	fmt.Printf("co-reservation: cpu %d (%v) + storage %d (%v)\n\n",
		rs[0].ID(), rs[0].State(), rs[1].ID(), rs[1].State())

	var times []time.Duration
	for _, s := range strings.Split(*atFlag, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(s))
		must(err)
		times = append(times, d)
	}
	for _, at := range times {
		must(tb.K.RunUntil(at))
		dump(tb, task, dpss)
	}
}

func dump(tb *garnet.Testbed, task *dsrt.Task, dpss *gara.DPSS) {
	fmt.Printf("=== state at t=%v ===\n", tb.K.Now())
	t := trace.Table{Headers: []string{"link (direction)", "EF capacity", "committed", "utilization"}}
	for _, l := range tb.Net.Links() {
		for _, dir := range []struct {
			label string
			out   *netsim.Iface
		}{
			{l.A().Node().Name() + "->" + l.B().Node().Name(), l.A()},
			{l.B().Node().Name() + "->" + l.A().Node().Name(), l.B()},
		} {
			st := tb.NetRM.Table(dir.out)
			committed := st.CommittedAt(tb.K.Now())
			if committed == 0 {
				continue // only show directions carrying reservations
			}
			t.Add(dir.label,
				units.BitRate(st.Capacity()).String(),
				units.BitRate(committed).String(),
				fmt.Sprintf("%.0f%%", 100*committed/st.Capacity()))
		}
	}
	if len(t.Rows) == 0 {
		t.Add("(no network reservations)", "", "", "")
	}
	fmt.Print(t.String())
	fmt.Printf("DSRT: task %q reservation %.0f%%\n", task.Name(), 100*task.Reservation())
	fmt.Printf("DPSS: %v of %v reserved\n\n", dpss.ReservedRate(), dpss.Capacity())
}

func fmtWindow(r *gara.Reservation) string {
	s, e := r.Window()
	if e == gara.Forever {
		return fmt.Sprintf("[%v, forever)", s)
	}
	return fmt.Sprintf("[%v, %v)", s, e)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// scenario issues the demo reservations quietly; the metrics and
// events subcommands run it to have observable state to dump.
func scenario(tb *garnet.Testbed) {
	cpu := dsrt.NewCPU(tb.K, "prem-src-cpu")
	task := cpu.NewTask("app")
	dpss := gara.NewDPSS(tb.K, "dpss", 100*units.Mbps)
	flow := diffserv.MatchHostPair(tb.PremSrc.Addr(), tb.PremDst.Addr(), netsim.ProtoTCP)
	_, err := tb.Gara.Reserve(gara.Spec{
		Type: gara.ResourceNetwork, Flow: flow, Bandwidth: 40 * units.Mbps,
	})
	must(err)
	_, err = tb.Gara.Reserve(gara.Spec{
		Type: gara.ResourceNetwork, Flow: flow, Bandwidth: 30 * units.Mbps,
		Start: 10 * time.Second, Duration: 10 * time.Second,
	})
	must(err)
	_, err = tb.Gara.CoReserve(
		gara.Spec{Type: gara.ResourceCPU, Task: task, Fraction: 0.8},
		gara.Spec{Type: gara.ResourceStorage, Store: dpss, ReadRate: 60 * units.Mbps},
	)
	must(err)
}

// metricsCmd implements "gqctl metrics": run the scenario and dump
// the metrics registry.
func metricsCmd(args []string) {
	fs := flag.NewFlagSet("gqctl metrics", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	until := fs.Duration("until", 25*time.Second, "virtual time to run the scenario for")
	format := fs.String("format", "prom", "output format: prom (Prometheus text) or json (snapshot)")
	must(fs.Parse(args))
	tb := garnet.New(*seed)
	scenario(tb)
	must(tb.K.RunUntil(*until))
	reg := tb.K.Metrics()
	switch *format {
	case "prom":
		must(reg.WritePrometheus(os.Stdout))
	case "json":
		must(reg.WriteJSON(os.Stdout))
	default:
		fmt.Fprintf(os.Stderr, "gqctl metrics: unknown format %q (want prom or json)\n", *format)
		os.Exit(2)
	}
}

// eventsCmd implements "gqctl events": run the scenario and list the
// flight recorder.
func eventsCmd(args []string) {
	fs := flag.NewFlagSet("gqctl events", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	until := fs.Duration("until", 25*time.Second, "virtual time to run the scenario for")
	typ := fs.String("type", "", "only events of this type (e.g. reservation-state)")
	subject := fs.String("subject", "", "only events with this subject")
	since := fs.Duration("since", 0, "only events at or after this virtual time")
	n := fs.Int("n", 0, "show only the last N matching events (0 = all)")
	must(fs.Parse(args))
	f := metrics.EventFilter{Subject: *subject, Since: *since, Last: *n}
	if *typ != "" {
		t, ok := metrics.ParseEventType(*typ)
		if !ok {
			fmt.Fprintf(os.Stderr, "gqctl events: unknown event type %q\n", *typ)
			os.Exit(2)
		}
		f.Type = t
	}
	tb := garnet.New(*seed)
	scenario(tb)
	must(tb.K.RunUntil(*until))
	rec := tb.K.Metrics().Events()
	rows := metrics.FilterEvents(rec.Snapshot(), f)
	t := trace.Table{Headers: []string{"seq", "t", "type", "subject", "v1", "v2", "v3"}}
	for _, e := range rows {
		t.Add(fmt.Sprint(e.Seq), e.At.String(), e.Type.String(), e.Subject,
			fmt.Sprint(e.V1), fmt.Sprint(e.V2), fmt.Sprint(e.V3))
	}
	fmt.Print(t.String())
	if dropped := rec.Overwritten(); dropped > 0 {
		fmt.Printf("(%d older events overwritten; ring capacity %d)\n", dropped, rec.Capacity())
	}
}

// traceCmd implements "gqctl trace <resv-id>": run the scenario with
// tracing enabled and print the causal span tree of that reservation's
// lifecycle.
func traceCmd(args []string) {
	fs := flag.NewFlagSet("gqctl trace", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	until := fs.Duration("until", 25*time.Second, "virtual time to run the scenario for")
	must(fs.Parse(args))
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gqctl trace [-seed N] [-until D] <resv-id>")
		os.Exit(2)
	}
	id, err := strconv.ParseUint(fs.Arg(0), 10, 64)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gqctl trace: %q is not a decimal reservation id\n", fs.Arg(0))
		os.Exit(2)
	}
	tb := garnet.New(*seed)
	tb.K.Tracer().SetEnabled(true)
	scenario(tb)
	must(tb.K.RunUntil(*until))
	tr := tb.K.Tracer()
	matched := tr.Trace(spans.DeriveTrace(spans.NSReservation, id))
	if len(matched) == 0 {
		// Diagnostics go to stderr so scripted callers piping stdout
		// see the non-zero exit with an empty tree, not a fake one.
		fmt.Fprintf(os.Stderr, "gqctl trace: no spans for reservation %d; reservations traced in this run:\n", id)
		seen := map[spans.TraceID]bool{}
		for _, s := range tr.Query(spans.Filter{NamePrefix: "gara."}) {
			if !seen[s.Trace] {
				seen[s.Trace] = true
				fmt.Fprintf(os.Stderr, "  %s %s (%s)\n", s.Trace, s.Name, s.Subject)
			}
		}
		os.Exit(1)
	}
	must(spans.WriteTree(os.Stdout, matched))
}
