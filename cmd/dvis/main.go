// Command dvis runs the §5.3 distance-visualization pipeline
// standalone, with every knob the paper varies exposed as a flag.
//
//	dvis -frame 30 -fps 10 -reserve 2500 -bucket 40
//
// streams 30 KB frames at 10 fps with a 2500 Kb/s reservation and the
// normal (bandwidth/40) token bucket, printing the achieved bandwidth
// and the per-second trace.
package main

import (
	"flag"
	"fmt"
	"time"

	gq "mpichgq/internal/core"
	"mpichgq/internal/experiments"
	"mpichgq/internal/garnet"
	"mpichgq/internal/trafficgen"
	"mpichgq/internal/units"
)

func main() {
	frameKB := flag.Int("frame", 30, "frame size in KB")
	fps := flag.Int("fps", 10, "frames per second")
	reserveKb := flag.Int("reserve", 0, "reservation in Kb/s (0 = best effort)")
	bucket := flag.Int("bucket", 40, "token bucket divisor (40 = normal, 4 = large)")
	dynamic := flag.Bool("dynamic", false, "size the bucket dynamically from the frame size (§5.4 extension)")
	shape := flag.Bool("shape", false, "enable end-system traffic shaping (§5.4 extension)")
	contend := flag.Bool("contend", true, "run the UDP contention generator")
	dur := flag.Duration("dur", 30*time.Second, "run duration (virtual time)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	tb := garnet.New(*seed)
	if *contend {
		bl := &trafficgen.UDPBlaster{Rate: 160 * units.Mbps, Jitter: 0.1}
		if err := bl.Run(tb.CompSrc, tb.CompDst, 9000); err != nil {
			panic(err)
		}
	}
	d := &experiments.DVis{
		FrameSize: units.ByteSize(*frameKB) * units.KB,
		FPS:       *fps,
		Duration:  *dur,
		Shaper:    *shape,
	}
	if *reserveKb > 0 {
		d.Attr = &gq.QosAttribute{
			Class:     gq.Premium,
			Bandwidth: units.BitRate(*reserveKb) * units.Kbps,
		}
		d.AgentMutate = func(a *gq.Agent) {
			a.OverheadFactor = 1.0 // -reserve is the raw network value
			a.BucketDivisor = *bucket
			a.DynamicBucket = *dynamic
			if *dynamic {
				d.Attr.MaxMessageSize = d.FrameSize
			}
		}
	}
	r := d.Run(tb)
	fmt.Printf("offered %v (%d KB x %d fps), achieved %v over %v\n",
		r.Offered, *frameKB, *fps, r.Achieved, *dur)
	fmt.Printf("frames sent: %d; sender TCP: %d segments, %d retransmits, %d timeouts\n",
		r.Frames, r.SenderStats.SegmentsSent, r.SenderStats.Retransmits, r.SenderStats.Timeouts)
	fmt.Print(r.Bandwidth.String())
}
