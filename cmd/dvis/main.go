// Command dvis runs the §5.3 distance-visualization pipeline
// standalone, with every knob the paper varies exposed as a flag.
//
//	dvis -frame 30 -fps 10 -reserve 2500 -bucket 40
//
// streams 30 KB frames at 10 fps with a 2500 Kb/s reservation and the
// normal (bandwidth/40) token bucket, printing the achieved bandwidth
// and the per-second trace.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	gq "mpichgq/internal/core"
	"mpichgq/internal/experiments"
	"mpichgq/internal/garnet"
	"mpichgq/internal/metrics"
	"mpichgq/internal/trace"
	"mpichgq/internal/trafficgen"
	"mpichgq/internal/units"
)

func main() {
	frameKB := flag.Int("frame", 30, "frame size in KB")
	fps := flag.Int("fps", 10, "frames per second")
	reserveKb := flag.Int("reserve", 0, "reservation in Kb/s (0 = best effort)")
	bucket := flag.Int("bucket", 40, "token bucket divisor (40 = normal, 4 = large)")
	dynamic := flag.Bool("dynamic", false, "size the bucket dynamically from the frame size (§5.4 extension)")
	shape := flag.Bool("shape", false, "enable end-system traffic shaping (§5.4 extension)")
	contend := flag.Bool("contend", true, "run the UDP contention generator")
	dur := flag.Duration("dur", 30*time.Second, "run duration (virtual time)")
	seed := flag.Int64("seed", 1, "simulation seed")
	snapshot := flag.String("snapshot", "", "write a JSON metrics snapshot of the run to this file")
	from := flag.String("from", "", "replay a JSON metrics snapshot instead of simulating")
	flag.Parse()

	if *from != "" {
		f, err := os.Open(*from)
		if err != nil {
			panic(err)
		}
		snap, err := metrics.LoadSnapshot(f)
		f.Close()
		if err != nil {
			panic(fmt.Sprintf("dvis: load snapshot %s: %v", *from, err))
		}
		replay(snap)
		return
	}

	tb := garnet.New(*seed)
	if *contend {
		bl := &trafficgen.UDPBlaster{Rate: 160 * units.Mbps, Jitter: 0.1}
		if err := bl.Run(tb.CompSrc, tb.CompDst, 9000); err != nil {
			panic(err)
		}
	}
	d := &experiments.DVis{
		FrameSize: units.ByteSize(*frameKB) * units.KB,
		FPS:       *fps,
		Duration:  *dur,
		Shaper:    *shape,
	}
	if *reserveKb > 0 {
		d.Attr = &gq.QosAttribute{
			Class:     gq.Premium,
			Bandwidth: units.BitRate(*reserveKb) * units.Kbps,
		}
		d.AgentMutate = func(a *gq.Agent) {
			a.OverheadFactor = 1.0 // -reserve is the raw network value
			a.BucketDivisor = *bucket
			a.DynamicBucket = *dynamic
			if *dynamic {
				d.Attr.MaxMessageSize = d.FrameSize
			}
		}
	}
	r := d.Run(tb)
	fmt.Printf("offered %v (%d KB x %d fps), achieved %v over %v\n",
		r.Offered, *frameKB, *fps, r.Achieved, *dur)
	fmt.Printf("frames sent: %d; sender TCP: %d segments, %d retransmits, %d timeouts\n",
		r.Frames, r.SenderStats.SegmentsSent, r.SenderStats.Retransmits, r.SenderStats.Timeouts)
	fmt.Print(r.Bandwidth.String())
	if *snapshot != "" {
		f, err := os.Create(*snapshot)
		if err != nil {
			panic(err)
		}
		if err := tb.K.Metrics().WriteJSON(f); err != nil {
			panic(err)
		}
		if err := f.Close(); err != nil {
			panic(err)
		}
		fmt.Printf("metrics snapshot written to %s\n", *snapshot)
	}
}

// replay renders a run summary from a saved metrics snapshot: the
// receiver-side bandwidth trace is rebuilt from mpi-recv flight
// events and the TCP totals come from the exported counters.
func replay(snap *metrics.Snapshot) {
	bw := trace.NewBandwidthTrace(time.Second)
	delivered := 0
	for _, e := range snap.EventsOfType("mpi-recv") {
		bw.Add(time.Duration(e.AtNs), units.ByteSize(e.V1))
		delivered++
	}
	first, last := snap.Span()
	fmt.Printf("replaying snapshot taken at t=%v (events span [%v, %v], %d overwritten)\n",
		time.Duration(snap.TakenAtNs), first, last, snap.EventsOverwritten)
	var segs, retx, tmo float64
	for _, m := range snap.Metrics {
		switch m.Name {
		case "tcp_segments_sent_total":
			segs += m.Value
		case "tcp_retransmits_total":
			retx += m.Value
		case "tcp_timeouts_total":
			tmo += m.Value
		}
	}
	fmt.Printf("messages delivered: %d (%v)\n", delivered, bw.Total())
	fmt.Printf("TCP (all nodes): %.0f segments, %.0f retransmits, %.0f timeouts\n", segs, retx, tmo)
	fmt.Print(bw.Series("snapshot mpi-recv bandwidth").String())
}
