// Command benchjson converts `go test -bench -benchmem` output on
// stdin into a stable JSON document on stdout, so benchmark
// trajectories can be committed (BENCH_PR4.json and successors) and
// diffed across PRs.
//
// Usage:
//
//	go test -bench . -benchmem -run xxx ./... | benchjson > BENCH.json
//
// Lines that are not benchmark results (package headers, PASS/ok) are
// ignored. Extra per-benchmark metrics reported via b.ReportMetric
// (e.g. plateauMb/s) are captured under "metrics".
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if r, ok := parse(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]any{"benchmarks": results}); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse decodes one benchmark line of the form:
//
//	BenchmarkName-8  100  1234 ns/op  56 B/op  7 allocs/op  8.9 custom/unit
func parse(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	// Strip the -GOMAXPROCS suffix for stable names across machines.
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}
