// Command benchjson converts `go test -bench -benchmem` output on
// stdin into a stable JSON document on stdout, so benchmark
// trajectories can be committed (BENCH_PR<n>.json) and diffed across
// PRs.
//
// Usage:
//
//	go test -bench . -benchmem -run xxx ./... | benchjson > BENCH.json
//	go test -bench ... | benchjson -guard [-slack 2.0]
//
// Lines that are not benchmark results (package headers, PASS/ok) are
// ignored. Extra per-benchmark metrics reported via b.ReportMetric
// (e.g. plateauMb/s) are captured under "metrics".
//
// In -guard mode benchjson instead compares the run on stdin against
// the committed baseline — the newest BENCH_PR<n>.json in the current
// directory, never a hardcoded name — and exits nonzero when a shared
// benchmark regresses: allocs/op more than 1% above the baseline
// (exact for zero-alloc paths, tolerant of scheduler jitter in macro
// benchmarks), or ns/op more than -slack times the baseline (generous
// by default because CI machines vary).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	guard := flag.Bool("guard", false, "compare stdin against the newest committed BENCH_PR<n>.json instead of emitting JSON")
	slack := flag.Float64("slack", 2.0, "guard mode: maximum allowed ns/op as a multiple of the baseline")
	flag.Parse()

	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if r, ok := parse(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })

	if *guard {
		if err := runGuard(results, *slack); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]any{"benchmarks": results}); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

var benchFilePat = regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)

// newestBaseline finds the committed BENCH_PR<n>.json with the highest
// PR number.
func newestBaseline(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		m := benchFilePat.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, _ := strconv.Atoi(m[1])
		if n > bestN {
			best, bestN = e.Name(), n
		}
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_PR<n>.json baseline in %s", dir)
	}
	return filepath.Join(dir, best), nil
}

// runGuard compares results against the newest committed baseline.
func runGuard(results []Result, slack float64) error {
	path, err := newestBaseline(".")
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		Benchmarks []Result `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	base := make(map[string]Result, len(doc.Benchmarks))
	for _, r := range doc.Benchmarks {
		base[r.Name] = r
	}

	compared, failed := 0, 0
	for _, r := range results {
		b, ok := base[r.Name]
		if !ok {
			fmt.Printf("benchjson: %s not in %s, skipped\n", r.Name, path)
			continue
		}
		compared++
		// Zero-alloc paths stay exact (1% of 0 is 0); macro
		// benchmarks whose counts jitter by a handful in millions
		// (goroutine scheduling in sweeps) get 1% of headroom.
		if allowed := b.AllocsPerOp + b.AllocsPerOp/100; r.AllocsPerOp > allowed {
			failed++
			fmt.Printf("benchjson: REGRESSION %s: %d allocs/op, baseline %d\n",
				r.Name, r.AllocsPerOp, b.AllocsPerOp)
		}
		if b.NsPerOp > 0 && r.NsPerOp > b.NsPerOp*slack {
			failed++
			fmt.Printf("benchjson: REGRESSION %s: %.0f ns/op, over %.1fx baseline %.0f\n",
				r.Name, r.NsPerOp, slack, b.NsPerOp)
		}
	}
	if compared == 0 {
		return fmt.Errorf("no benchmarks on stdin matched %s", path)
	}
	if failed > 0 {
		return fmt.Errorf("%d regression(s) against %s", failed, path)
	}
	fmt.Printf("benchjson: %d benchmark(s) within allocs and %.1fx ns/op of %s\n",
		compared, slack, filepath.Base(path))
	return nil
}

// parse decodes one benchmark line of the form:
//
//	BenchmarkName-8  100  1234 ns/op  56 B/op  7 allocs/op  8.9 custom/unit
func parse(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	// Strip the -GOMAXPROCS suffix for stable names across machines.
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}
