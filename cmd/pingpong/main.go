// Command pingpong runs the §5.2 ping-pong benchmark standalone: two
// MPI ranks exchanging fixed-size messages across the simulated
// testbed, with optional contention and a premium reservation.
//
//	pingpong -msg 120 -reserve 8000 -contend -dur 20s
//
// measures one 120 Kb message size at one 8 Mb/s one-way reservation.
// A -sweep flag reproduces one full Figure 5 curve instead.
package main

import (
	"flag"
	"fmt"
	"time"

	gq "mpichgq/internal/core"
	"mpichgq/internal/garnet"
	"mpichgq/internal/mpi"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/trafficgen"
	"mpichgq/internal/units"
)

func main() {
	msgKb := flag.Int("msg", 120, "message size in kilobits")
	reserveKb := flag.Int("reserve", 0, "one-way reservation in Kb/s (0 = best effort)")
	contend := flag.Bool("contend", true, "run the UDP contention generator")
	dur := flag.Duration("dur", 20*time.Second, "measurement duration (virtual time)")
	sweep := flag.Bool("sweep", false, "sweep reservations for this message size (one Figure 5 curve)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	size := units.ByteSize(*msgKb) * units.Kbit
	if *sweep {
		fmt.Printf("ping-pong sweep: %d Kb messages, contention=%v\n", *msgKb, *contend)
		fmt.Printf("%-14s %s\n", "reservation", "one-way throughput")
		for _, rsv := range []units.BitRate{
			500 * units.Kbps, units.Mbps, 2 * units.Mbps, 4 * units.Mbps,
			8 * units.Mbps, 16 * units.Mbps, 32 * units.Mbps, 48 * units.Mbps,
		} {
			tput := run(*seed, size, rsv, *contend, *dur)
			fmt.Printf("%-14v %v\n", rsv, tput)
		}
		return
	}
	rsv := units.BitRate(*reserveKb) * units.Kbps
	tput := run(*seed, size, rsv, *contend, *dur)
	fmt.Printf("message %d Kb, reservation %v, contention %v: one-way throughput %v\n",
		*msgKb, rsv, *contend, tput)
}

func run(seed int64, size units.ByteSize, rsv units.BitRate, contend bool, dur time.Duration) units.BitRate {
	tb := garnet.New(seed)
	if contend {
		bl := &trafficgen.UDPBlaster{Rate: 160 * units.Mbps, Jitter: 0.1}
		if err := bl.Run(tb.CompSrc, tb.CompDst, 9000); err != nil {
			panic(err)
		}
	}
	job := tb.NewMPIPair(tcpsim.DefaultOptions(), mpi.JobOptions{})
	agent := gq.NewAgent(tb.Gara, job)
	agent.OverheadFactor = 1.0 // the -reserve flag is the raw network value
	var oneWay units.ByteSize
	job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
		pc, err := r.PairComm(ctx, 1-r.ID())
		if err != nil {
			panic(err)
		}
		if rsv > 0 {
			attr := &gq.QosAttribute{Class: gq.Premium, Bandwidth: rsv}
			if err := r.AttrPut(pc, agent.Keyval(), attr); err != nil {
				panic(err)
			}
		}
		peer := 1 - r.RankIn(pc)
		for ctx.Now() < dur {
			if r.ID() == 0 {
				if err := r.Send(ctx, pc, peer, 0, size, nil); err != nil {
					return
				}
				if _, err := r.Recv(ctx, pc, peer, 0); err != nil {
					return
				}
				oneWay += size
			} else {
				if _, err := r.Recv(ctx, pc, peer, 0); err != nil {
					return
				}
				if err := r.Send(ctx, pc, peer, 0, size, nil); err != nil {
					return
				}
			}
		}
	})
	if err := tb.K.RunUntil(dur); err != nil {
		panic(err)
	}
	return units.RateOf(oneWay, dur)
}
