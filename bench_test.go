// Benchmark harness: one benchmark per table and figure of the
// paper's evaluation, plus one per ablation called out in DESIGN.md.
//
// Each benchmark iteration runs the complete experiment in virtual
// time (abbreviated via TimeScale so -benchtime=1x stays tractable)
// and reports domain-specific metrics alongside ns/op:
//
//	go test -bench=. -benchmem
//
// Regenerate the paper-length numbers with cmd/garnet -exp <id>.
package main

import (
	"testing"
	"time"

	"mpichgq/internal/experiments"
	"mpichgq/internal/units"
)

// benchCfg runs experiments at 1/5 of paper length: long enough for
// steady state, short enough for a benchmark suite.
func benchCfg() experiments.Config {
	return experiments.Config{Seed: 1, TimeScale: 0.2}
}

// BenchmarkFigure1 regenerates Figure 1: a TCP flow offered 50 Mb/s
// against a 40 Mb/s reservation, oscillating under contention.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFigure1(benchCfg())
		b.ReportMetric(r.Mean.Mbps(), "meanMb/s")
		b.ReportMetric(r.Max.Mbps()-r.Min.Mbps(), "swingMb/s")
	}
}

// BenchmarkFigure5 regenerates Figure 5: ping-pong throughput vs
// reservation for four message sizes under contention. The reported
// metric is the largest message's plateau throughput. Background
// contention runs in hybrid fluid mode — the default for the figure
// pipeline since PR 9 — so this is the number bench-guard holds the
// build to; BenchmarkFigure5Packet keeps the packet-level reference
// trajectory alongside it.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.FluidBackground = true
		r := experiments.RunFigure5(cfg)
		big := experiments.Figure5MessageSizes[3]
		curve := r.Curves[big]
		b.ReportMetric(curve[len(curve)-1].Throughput.Mbps(), "plateauMb/s")
	}
}

// BenchmarkFigure5Packet is BenchmarkFigure5 with packet-level
// background: the golden the fluid plateau is validated against (see
// AblationFluidValidation) and the record of what the hybrid mode
// buys.
func BenchmarkFigure5Packet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFigure5(benchCfg())
		big := experiments.Figure5MessageSizes[3]
		curve := r.Curves[big]
		b.ReportMetric(curve[len(curve)-1].Throughput.Mbps(), "plateauMb/s")
	}
}

// BenchmarkFigure6 regenerates Figure 6: the visualization app's
// achieved bandwidth vs reservation; the metric is the achieved
// fraction at the 1.06x point for the 2400 Kb/s stream.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFigure6(benchCfg())
		offered := r.Offered[len(r.Offered)-1]
		for _, p := range r.Curves[offered] {
			if p.Reservation == units.BitRate(1.06*float64(offered)) {
				b.ReportMetric(float64(p.Achieved)/float64(offered), "achieved/offered@1.06x")
			}
		}
	}
}

// BenchmarkTable1 regenerates Table 1: required reservation vs
// burstiness and bucket size; the metric is the bursty-to-smooth
// requirement ratio at 400 Kb/s (the paper reports ~1.5).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunTable1(benchCfg())
		row := r.Rows[0]
		b.ReportMetric(float64(row.Normal1fps)/float64(row.Normal10fps), "bursty/smooth")
		b.ReportMetric(float64(row.Large1fps)/float64(row.Normal10fps), "largeBucket/smooth")
	}
}

// BenchmarkFigure7 regenerates Figure 7's sequence traces; the metric
// is the bursty program's max 100 ms burst over the smooth one's.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFigure7(experiments.Config{Seed: 1, TimeScale: 1})
		b.ReportMetric(float64(r.BurstyBurst)/float64(r.SmoothBurst), "burstRatio")
	}
}

// BenchmarkFigure8 regenerates Figure 8: CPU contention and DSRT
// recovery; the metrics are the contended dip and reserved recovery
// as fractions of the quiet rate.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFigure8(experiments.Config{Seed: 1, TimeScale: 0.5})
		b.ReportMetric(float64(r.ContendedMean)/float64(r.QuietMean), "contendedFrac")
		b.ReportMetric(float64(r.ReservedMean)/float64(r.QuietMean), "reservedFrac")
	}
}

// BenchmarkFigure9 regenerates Figure 9's five-phase timeline; the
// metric is the final phase's recovery fraction (both reservations
// in force).
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFigure9(experiments.Config{Seed: 1, TimeScale: 0.5})
		b.ReportMetric(float64(r.CPUReserved)/float64(r.Clean), "recoveredFrac")
		b.ReportMetric(float64(r.NetCongested)/float64(r.Clean), "congestedFrac")
	}
}

// BenchmarkAblationBucketDepth sweeps token-bucket depth rules for
// the bursty stream.
func BenchmarkAblationBucketDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.AblationBucketDepth(benchCfg())
	}
}

// BenchmarkAblationShaping compares router-only policing with
// end-system shaping.
func BenchmarkAblationShaping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.AblationShaping(benchCfg())
	}
}

// BenchmarkAblationEagerThreshold sweeps the MPI eager/rendezvous
// threshold.
func BenchmarkAblationEagerThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.AblationEagerThreshold(benchCfg())
	}
}

// BenchmarkAblationSocketBuffers crosses socket buffer sizes with CPU
// contention (§5.5).
func BenchmarkAblationSocketBuffers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.AblationSocketBuffers(benchCfg())
	}
}

// BenchmarkAblationOverhead locates the reservation/offered knee
// around the paper's 1.06.
func BenchmarkAblationOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.AblationOverheadFactor(benchCfg())
	}
}

// BenchmarkAblationEraTCP compares modern and 2000-era transports on
// the bursty stream (Table 1's penalty magnitude).
func BenchmarkAblationEraTCP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.AblationEraTCP(benchCfg())
	}
}

// BenchmarkISvsDS runs the §2 architectural comparison: per-router
// state under IntServ vs DiffServ, with protection verified both ways.
func BenchmarkISvsDS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunISvsDS(benchCfg(), 8)
		b.ReportMetric(float64(r.ISCoreState), "isCoreState")
		b.ReportMetric(float64(r.DSCoreRules), "dsCoreState")
	}
}

// BenchmarkSimulatorPacketRate measures raw simulator performance:
// virtual seconds of saturated-bottleneck simulation per wall second.
func BenchmarkSimulatorPacketRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		start := time.Now()
		r := experiments.RunFigure1(experiments.Config{Seed: int64(i + 1), TimeScale: 0.1})
		wall := time.Since(start).Seconds()
		_ = r
		b.ReportMetric(10/wall, "simSec/wallSec")
	}
}

// BenchmarkLatencyClass measures the low-latency class's RTT benefit
// under contention (median ratio best-effort / low-latency).
func BenchmarkLatencyClass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunLatency(benchCfg())
		b.ReportMetric(float64(r.BestEffort.Median)/float64(r.LowLatency.Median), "medianRatio")
		b.ReportMetric(float64(r.LowLatency.Median)/float64(time.Millisecond), "llMedianMs")
	}
}

// BenchmarkAdmissionStorm regenerates Figure I's harshest cell pair: a
// reservation storm at ten times broker capacity, with and without
// overload controls, reporting admitted goodput for both.
func BenchmarkAdmissionStorm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFigureI(experiments.Config{Seed: 1, TimeScale: 0.25, Parallel: 8})
		last := len(r.Mults) - 1
		b.ReportMetric(r.Controls[last].GoodputRPS, "ctlGoodput/s")
		b.ReportMetric(r.NoCtrl[last].GoodputRPS, "rawGoodput/s")
		b.ReportMetric(float64(r.Controls[last].Sheds), "sheds")
	}
}
