// Visualization: the paper's distance-visualization pipeline (§5.3).
//
// A sender streams fixed-size frames at a fixed rate to a receiver
// across the congested testbed. The run starts best effort; at t=10s
// the application puts a premium QoS attribute on its communicator
// and the stream recovers. The per-second bandwidth trace is printed
// so the recovery is visible, as in the paper's Figure 9 timeline.
//
//	go run ./examples/visualization
package main

import (
	"fmt"
	"time"

	gq "mpichgq/internal/core"
	"mpichgq/internal/garnet"
	"mpichgq/internal/mpi"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/trace"
	"mpichgq/internal/trafficgen"
	"mpichgq/internal/units"
)

func main() {
	const (
		frameSize = 30 * units.KB // 2400 Kb/s at 10 fps
		fps       = 10
		runFor    = 25 * time.Second
		reserveAt = 10 * time.Second
	)
	tb := garnet.New(1)
	blaster := &trafficgen.UDPBlaster{Rate: 160 * units.Mbps, Jitter: 0.1}
	if err := blaster.Run(tb.CompSrc, tb.CompDst, 9000); err != nil {
		panic(err)
	}

	job := tb.NewMPIPair(tcpsim.DefaultOptions(), mpi.JobOptions{EagerThreshold: units.MB})
	agent := gq.NewAgent(tb.Gara, job)
	bw := trace.NewBandwidthTrace(time.Second)

	job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
		pc, err := r.PairComm(ctx, 1-r.ID())
		if err != nil {
			panic(err)
		}
		peer := 1 - r.RankIn(pc)
		// Both ranks request QoS at t=10s (putting the attribute
		// triggers the reservation).
		ctx.SpawnChild("reserve", func(rctx *sim.Ctx) {
			rctx.Sleep(reserveAt)
			// No MaxMessageSize: the agent's measured 1.06 overhead
			// rule applies (the exact computation is tighter and
			// leaves no slack for congestion-control sawtooth).
			attr := &gq.QosAttribute{
				Class:     gq.Premium,
				Bandwidth: 2400 * units.Kbps,
			}
			if err := r.AttrPut(pc, agent.Keyval(), attr); err != nil {
				panic(err)
			}
		})
		if r.ID() == 0 {
			interval := time.Second / fps
			for ctx.Now() < runFor {
				next := ctx.Now() + interval
				if err := r.Send(ctx, pc, peer, 0, frameSize, nil); err != nil {
					return
				}
				if wait := next - ctx.Now(); wait > 0 {
					ctx.Sleep(wait)
				}
			}
			return
		}
		for {
			m, err := r.Recv(ctx, pc, peer, 0)
			if err != nil {
				return
			}
			bw.Add(ctx.Now(), m.Len)
		}
	})
	if err := tb.K.RunUntil(runFor); err != nil {
		panic(err)
	}

	fmt.Printf("visualization pipeline: %v frames at %d fps (offered %v)\n",
		frameSize, fps, units.RateOf(frameSize*fps, time.Second))
	fmt.Printf("premium reservation made at t=%v\n\n", reserveAt)
	fmt.Println("  time   achieved")
	for _, p := range bw.Series("dvis").Points {
		bar := ""
		for i := 0; i < int(p.V/100); i++ {
			bar += "#"
		}
		fmt.Printf("  %4.1fs  %7.0f Kb/s  %s\n", p.T.Seconds(), p.V, bar)
	}
	fmt.Printf("\nmean before reservation:        %v\n", bw.MeanRate(time.Second, reserveAt))
	fmt.Printf("steady state after reservation: %v (offered %v)\n",
		bw.MeanRate(reserveAt+3*time.Second, runFor),
		units.RateOf(frameSize*fps, time.Second))
}
