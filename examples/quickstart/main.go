// Quickstart: the paper's core idea in one program.
//
// Two MPI ranks exchange ping-pong messages across the simulated
// GARNET testbed while a UDP blaster saturates the shared bottleneck.
// The program runs the exchange twice — best effort, then with a
// premium QoS attribute put on the communicator (Figure 3's pattern)
// — and prints the throughput of each.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	gq "mpichgq/internal/core"
	"mpichgq/internal/garnet"
	"mpichgq/internal/mpi"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/trafficgen"
	"mpichgq/internal/units"
)

func main() {
	const (
		msgSize = 15 * units.KB // 120 Kb messages, Figure 5's largest
		runFor  = 10 * time.Second
	)
	for _, premium := range []bool{false, true} {
		rate := pingPong(premium, msgSize, runFor)
		mode := "best effort"
		if premium {
			mode = "premium (4 Mb/s reservation)"
		}
		fmt.Printf("%-30s one-way throughput: %v\n", mode, rate)
	}
	fmt.Println("\nThe premium run holds its bandwidth because the QoS attribute")
	fmt.Println("triggered a GARA reservation: the edge router marks the flow EF")
	fmt.Println("and polices it with a token bucket, and every router forwards")
	fmt.Println("expedited packets before the blaster's best-effort flood.")
}

// pingPong runs the exchange on a fresh testbed and returns the
// one-way throughput.
func pingPong(premium bool, msgSize units.ByteSize, runFor time.Duration) units.BitRate {
	tb := garnet.New(1)

	// Contention: a UDP generator "quite capable of overwhelming any
	// TCP application that does not have a reservation".
	blaster := &trafficgen.UDPBlaster{Rate: 160 * units.Mbps, Jitter: 0.1}
	if err := blaster.Run(tb.CompSrc, tb.CompDst, 9000); err != nil {
		panic(err)
	}

	job := tb.NewMPIPair(tcpsim.DefaultOptions(), mpi.JobOptions{})
	agent := gq.NewAgent(tb.Gara, job)

	var oneWay units.ByteSize
	job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
		// A two-party intercommunicator targets QoS at exactly this
		// link (§4.1).
		pc, err := r.PairComm(ctx, 1-r.ID())
		if err != nil {
			panic(err)
		}
		if premium {
			// Figure 3, in Go: put the attribute, then get it back to
			// check whether the requested QoS is available.
			attr := &gq.QosAttribute{
				Class:          gq.Premium,
				Bandwidth:      4 * units.Mbps,
				MaxMessageSize: msgSize,
			}
			if err := r.AttrPut(pc, agent.Keyval(), attr); err != nil {
				panic(err)
			}
			got, ok := pc.AttrGet(agent.Keyval())
			if !ok || !got.(*gq.QosAttribute).Granted {
				panic("QoS not granted")
			}
		}
		peer := 1 - r.RankIn(pc)
		for ctx.Now() < runFor {
			if r.ID() == 0 {
				if err := r.Send(ctx, pc, peer, 0, msgSize, nil); err != nil {
					return
				}
				if _, err := r.Recv(ctx, pc, peer, 0); err != nil {
					return
				}
				oneWay += msgSize
			} else {
				if _, err := r.Recv(ctx, pc, peer, 0); err != nil {
					return
				}
				if err := r.Send(ctx, pc, peer, 0, msgSize, nil); err != nil {
					return
				}
			}
		}
	})
	if err := tb.K.RunUntil(runFor); err != nil {
		panic(err)
	}
	return units.RateOf(oneWay, runFor)
}
