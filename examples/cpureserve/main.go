// CPU reservation: the paper's §5.5 combined network+CPU scenario.
//
// A visualization stream runs at 15 Mb/s. At t=10s a CPU-intensive
// application starts on the sending host and the stream degrades —
// network QoS alone cannot help, because the bottleneck is now the
// sender's CPU. At t=20s a DSRT reservation for 90% of the CPU is
// made through GARA and the stream recovers (Figure 8).
//
//	go run ./examples/cpureserve
package main

import (
	"fmt"
	"time"

	gq "mpichgq/internal/core"
	"mpichgq/internal/garnet"
	"mpichgq/internal/mpi"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/trace"
	"mpichgq/internal/trafficgen"
	"mpichgq/internal/units"
)

func main() {
	const (
		frameSize = 187500 * units.Byte // 15 Mb/s at 10 fps
		fps       = 10
		runFor    = 30 * time.Second
		hogAt     = 10 * time.Second
		reserveAt = 20 * time.Second
		workPerKB = 350 * time.Microsecond
	)
	tb := garnet.New(1)
	job := tb.NewMPIPair(tcpsim.DefaultOptions(), mpi.JobOptions{
		CopyCostPerKB:  100 * time.Microsecond,
		EagerThreshold: units.MB,
		SockBuf:        512 * units.KB,
	})
	agent := gq.NewAgent(tb.Gara, job)

	// The CPU-intensive competitor on the sending host.
	hog := &trafficgen.CPUHog{Start: hogAt}
	hog.Run(tb.K, job.Rank(0).Host().CPU)

	bw := trace.NewBandwidthTrace(time.Second)
	job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
		w := r.World()
		if r.ID() == 0 {
			// DSRT CPU reservation at t=20s, via the same GARA
			// instance that manages the network.
			ctx.SpawnChild("cpu-reserve", func(rctx *sim.Ctx) {
				rctx.Sleep(reserveAt)
				if _, err := agent.ReserveCPU(r, 0.9); err != nil {
					panic(err)
				}
			})
			interval := time.Second / fps
			frameKB := float64(frameSize) / 1000
			for ctx.Now() < runFor {
				next := ctx.Now() + interval
				// Rendering "work" for the frame — without this, the
				// paper notes, the app is an inaccurate simulation
				// barely touched by CPU contention.
				r.Compute(ctx, time.Duration(frameKB*float64(workPerKB)))
				if err := r.Send(ctx, w, 1, 0, frameSize, nil); err != nil {
					return
				}
				if wait := next - ctx.Now(); wait > 0 {
					ctx.Sleep(wait)
				}
			}
			return
		}
		for {
			m, err := r.Recv(ctx, w, 0, 0)
			if err != nil {
				return
			}
			bw.Add(ctx.Now(), m.Len)
		}
	})
	if err := tb.K.RunUntil(runFor); err != nil {
		panic(err)
	}

	fmt.Println("combined network + CPU QoS (Figure 8 scenario)")
	fmt.Printf("CPU hog starts at t=%v; 90%% DSRT reservation at t=%v\n\n", hogAt, reserveAt)
	for _, p := range bw.Series("dvis").Points {
		bar := ""
		for i := 0; i < int(p.V/500); i++ {
			bar += "#"
		}
		fmt.Printf("  %4.1fs  %8.0f Kb/s  %s\n", p.T.Seconds(), p.V, bar)
	}
	fmt.Printf("\nquiet:          %v\n", bw.MeanRate(time.Second, hogAt))
	fmt.Printf("CPU contention: %v\n", bw.MeanRate(hogAt+time.Second, reserveAt))
	fmt.Printf("CPU reserved:   %v\n", bw.MeanRate(reserveAt+time.Second, runFor))
}
