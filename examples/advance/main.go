// Advance reservations: GARA's slot-table booking ahead of time,
// mediated by a policy-enforcing bandwidth broker.
//
// Two users share the testbed. Alice books 60 Mb/s for a transfer
// window starting at t=10s; Bob tries to book an overlapping 60 Mb/s
// (admission control refuses: the EF share of the bottleneck is
// ~108 Mb/s) and settles for the window after hers. The program then
// runs both transfers and shows each one getting its bandwidth inside
// its window.
//
//	go run ./examples/advance
package main

import (
	"fmt"
	"time"

	"mpichgq/internal/broker"
	"mpichgq/internal/diffserv"
	"mpichgq/internal/gara"
	"mpichgq/internal/garnet"
	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/trace"
	"mpichgq/internal/trafficgen"
	"mpichgq/internal/units"
)

func main() {
	tb := garnet.New(1)
	// Background contention throughout.
	bl := &trafficgen.UDPBlaster{Rate: 160 * units.Mbps, Jitter: 0.1}
	if err := bl.Run(tb.CompSrc, tb.CompDst, 9000); err != nil {
		panic(err)
	}

	bk := broker.New(tb.Gara, broker.Policy{
		MaxBandwidth: 80 * units.Mbps,
		MaxDuration:  time.Minute,
		MaxAdvance:   time.Hour,
	})

	sa := tcpsim.NewStack(tb.PremSrc, tcpsim.DefaultOptions())
	sb := tcpsim.NewStack(tb.PremDst, tcpsim.DefaultOptions())

	// Two premium flows on distinct ports.
	mkSpec := func(port netsim.Port, start time.Duration) gara.Spec {
		p := port
		tcp := netsim.ProtoTCP
		src, dst := tb.PremSrc.Addr(), tb.PremDst.Addr()
		return gara.Spec{
			Type:      gara.ResourceNetwork,
			Flow:      diffserv.Match{Src: &src, Dst: &dst, DstPort: &p, Proto: &tcp},
			Bandwidth: 60 * units.Mbps,
			Start:     start,
			Duration:  10 * time.Second,
		}
	}
	alice, err := bk.Request("alice", mkSpec(8001, 10*time.Second))
	must(err)
	fmt.Printf("alice: 60 Mb/s booked for [10s, 20s): %v\n", alice.State())

	if _, err := bk.Request("bob", mkSpec(8002, 12*time.Second)); err != nil {
		fmt.Printf("bob:   overlapping request refused: %v\n", err)
	}
	bob, err := bk.Request("bob", mkSpec(8002, 20*time.Second))
	must(err)
	fmt.Printf("bob:   60 Mb/s booked for [20s, 30s): %v\n\n", bob.State())

	// Both transfers run the whole time; each one's bandwidth trace
	// shows its reservation window.
	traces := map[string]*trace.BandwidthTrace{
		"alice": trace.NewBandwidthTrace(time.Second),
		"bob":   trace.NewBandwidthTrace(time.Second),
	}
	for _, u := range []struct {
		name        string
		port        netsim.Port
		start, stop time.Duration
	}{
		{"alice", 8001, 10 * time.Second, 20 * time.Second},
		{"bob", 8002, 20 * time.Second, 30 * time.Second},
	} {
		u := u
		tb.K.Spawn(u.name+"-server", func(ctx *sim.Ctx) {
			l, err := sb.Listen(u.port)
			must(err)
			c, err := l.Accept(ctx)
			if err != nil {
				return
			}
			for {
				n, err := c.Read(ctx, 256*units.KB)
				traces[u.name].Add(ctx.Now(), n)
				if err != nil {
					return
				}
			}
		})
		// Each transfer runs inside its reserved window, as a real
		// user with an advance booking would.
		tb.K.SpawnAt(u.start, u.name+"-client", func(ctx *sim.Ctx) {
			c, err := sa.Dial(ctx, tb.PremDst.Addr(), u.port)
			must(err)
			const chunk = 50 * units.Kbit
			gap := (50 * units.Mbps).TimeToSend(chunk)
			for ctx.Now() < u.stop {
				if err := c.Write(ctx, chunk); err != nil {
					return
				}
				ctx.Sleep(gap)
			}
			c.Close()
		})
	}
	must(tb.K.RunUntil(31 * time.Second))

	fmt.Println("  time      alice        bob")
	a := traces["alice"].Series("alice").Points
	b := traces["bob"].Series("bob").Points
	val := func(pts []trace.Point, i int) float64 {
		if i < len(pts) {
			return pts[i].V
		}
		return 0
	}
	for i := 0; i < 30; i++ {
		fmt.Printf("  %4.1fs  %8.0f Kb/s  %8.0f Kb/s\n",
			float64(i)+0.5, val(a, i), val(b, i))
	}
	fmt.Println("\nEach flow only achieves its rate inside its reserved window —")
	fmt.Println("the slot table admitted the two 60 Mb/s bookings back to back")
	fmt.Println("because together they never exceed the bottleneck's EF share.")
	fmt.Println("\nbroker audit log:")
	for _, d := range bk.Decisions() {
		verdict := "DENY "
		if d.Granted {
			verdict = "GRANT"
		}
		fmt.Printf("  t=%-4v %s %-6s %v %s\n", d.T, verdict, d.Who, d.Spec.Bandwidth, d.Reason)
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
