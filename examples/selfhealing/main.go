// Self-healing QoS: fault injection, failover, and reservation repair.
//
// A premium MPI flow streams at 10 Mb/s across the GARNET bottleneck
// while a UDP blaster floods the same path. A fault scenario takes the
// bottleneck link down for four seconds mid-run. The QoS agent's
// watchdog notices the broken guarantee, retries re-admission with
// exponential backoff, and restores the premium reservation once the
// link returns — without the application changing a line.
//
// The program prints a per-second goodput timeline and then the
// flight-recorder events that tell the story: the link flap, the fault
// injections, and each phase of the repair state machine.
//
//	go run ./examples/selfhealing
package main

import (
	"fmt"
	"time"

	gq "mpichgq/internal/core"
	"mpichgq/internal/faults"
	"mpichgq/internal/garnet"
	"mpichgq/internal/metrics"
	"mpichgq/internal/mpi"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/trafficgen"
	"mpichgq/internal/units"
)

func main() {
	const (
		target = 10 * units.Mbps
		msg    = 25 * units.KB
		downAt = 6 * time.Second
		upAt   = 10 * time.Second
		runFor = 18 * time.Second
	)

	tb := garnet.New(1)
	// A long run emits millions of packet-level events; keep enough of
	// the ring to still hold the handful of fault and repair records.
	tb.K.Metrics().Events().SetCapacity(1 << 22)

	// Chaos: flap the shared bottleneck link mid-run.
	faults.NewScenario("demo").
		Flap("edge1-core", downAt, upAt).
		MustApply(tb.Net)

	// Contention crossing the same bottleneck throughout.
	blaster := &trafficgen.UDPBlaster{Rate: 160 * units.Mbps, Jitter: 0.1}
	if err := blaster.Run(tb.CompSrc, tb.CompDst, 9000); err != nil {
		panic(err)
	}

	job := tb.NewMPIPair(tcpsim.DefaultOptions(), mpi.JobOptions{EagerThreshold: units.MB})
	agent := gq.NewAgent(tb.Gara, job)

	perSec := make([]units.ByteSize, int(runFor/time.Second))
	var wd *gq.Watchdog
	job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
		pc, err := r.PairComm(ctx, 1-r.ID())
		if err != nil {
			panic(err)
		}
		peer := 1 - r.RankIn(pc)
		if r.ID() == 0 {
			attr := &gq.QosAttribute{Class: gq.Premium, Bandwidth: target}
			if err := r.AttrPut(pc, agent.Keyval(), attr); err != nil {
				panic(err)
			}
			w, err := agent.NewWatchdog(r, pc, target)
			if err != nil {
				panic(err)
			}
			wd = w
			ctx.SpawnChild("watchdog", func(wctx *sim.Ctx) {
				w.Run(wctx, 250*time.Millisecond, runFor)
			})
			gap := target.TimeToSend(msg)
			for ctx.Now() < runFor {
				if err := r.Send(ctx, pc, peer, 0, msg, nil); err != nil {
					return
				}
				ctx.Sleep(gap)
			}
			return
		}
		for {
			m, err := r.Recv(ctx, pc, peer, 0)
			if err != nil {
				return
			}
			if s := int(ctx.Now() / time.Second); s < len(perSec) {
				perSec[s] += m.Len
			}
		}
	})
	if err := tb.K.RunUntil(runFor); err != nil {
		panic(err)
	}

	fmt.Printf("10 Mb/s premium flow; bottleneck down %v..%v; blaster at 160 Mb/s throughout\n\n",
		downAt, upAt)
	fmt.Println("goodput timeline:")
	for s, b := range perSec {
		rate := units.RateOf(b, time.Second)
		bar := int(rate / units.Mbps / 2)
		fmt.Printf("  %2ds  %9v  %s\n", s, rate, barString(bar))
	}
	fmt.Printf("\nwatchdog: %d repairs, %d fallbacks, %d upgrades\n",
		wd.Repairs(), wd.Fallbacks(), wd.Upgrades())

	fmt.Println("\nflight recorder (faults and repair phases):")
	for _, ev := range tb.K.Metrics().Events().Snapshot() {
		switch ev.Type {
		case metrics.EvLinkDown, metrics.EvLinkUp, metrics.EvFaultInject, metrics.EvQosRepair:
			fmt.Printf("  %8.3fs  %-12s %s\n", ev.At.Seconds(), ev.Type, ev.Subject)
		}
	}
}

func barString(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s += "#"
	}
	return s
}
