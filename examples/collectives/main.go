// Collectives: a four-rank job spanning two "sites" of the testbed,
// using communicator splitting and QoS-annotated collectives.
//
// Ranks 0,1 run at the premium source site and ranks 2,3 at the
// destination site (a finite-difference style setup: compute locally,
// exchange halos across the wide link, reduce globally). The
// cross-site pair communicator gets a low-latency QoS class so the
// small collective traffic is not buried by the blaster.
//
//	go run ./examples/collectives
package main

import (
	"fmt"
	"time"

	gq "mpichgq/internal/core"
	"mpichgq/internal/garnet"
	"mpichgq/internal/mpi"
	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/trafficgen"
	"mpichgq/internal/units"
)

func main() {
	const (
		iterations = 50
		haloSize   = 10 * units.KB
	)
	tb := garnet.New(1)
	blaster := &trafficgen.UDPBlaster{Rate: 160 * units.Mbps, Jitter: 0.1}
	if err := blaster.Run(tb.CompSrc, tb.CompDst, 9000); err != nil {
		panic(err)
	}

	// Two ranks per site.
	nodes := []*netsim.Node{tb.PremSrc, tb.PremSrc, tb.PremDst, tb.PremDst}
	job := tb.NewMPIJob(nodes, tcpsim.DefaultOptions(), mpi.JobOptions{})
	agent := gq.NewAgent(tb.Gara, job)

	var iterTimes []time.Duration
	var finalSum float64
	job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
		w := r.World()
		site := r.ID() / 2
		// Site-local communicator via MPI_Comm_split.
		local, err := r.CommSplit(ctx, w, site, r.ID())
		if err != nil {
			panic(err)
		}
		// Cross-site partner: rank i pairs with rank (i+2)%4.
		partner := (r.ID() + 2) % 4
		pair, err := r.PairComm(ctx, partner)
		if err != nil {
			panic(err)
		}
		// Premium for the halo exchange; the class is low-latency
		// because halos are small and latency-sensitive.
		attr := &gq.QosAttribute{
			Class:          gq.LowLatency,
			Bandwidth:      units.RateOf(haloSize, 100*time.Millisecond),
			MaxMessageSize: haloSize,
		}
		if err := r.AttrPut(pair, agent.Keyval(), attr); err != nil {
			panic(err)
		}

		value := float64(r.ID() + 1)
		pairPeer := 1 - r.RankIn(pair)
		for i := 0; i < iterations; i++ {
			start := ctx.Now()
			// "Compute" locally.
			r.Compute(ctx, 2*time.Millisecond)
			// Halo exchange across sites on the premium pair.
			if _, err := r.SendRecv(ctx, pair, pairPeer, 1, haloSize, nil, pairPeer, 1); err != nil {
				panic(err)
			}
			// Site-local reduction, then a global one.
			if _, err := r.Allreduce(ctx, local, []float64{value}, mpi.OpSum); err != nil {
				panic(err)
			}
			global, err := r.Allreduce(ctx, w, []float64{value}, mpi.OpSum)
			if err != nil {
				panic(err)
			}
			finalSum = global[0]
			if r.ID() == 0 {
				iterTimes = append(iterTimes, ctx.Now()-start)
			}
		}
	})
	if err := tb.K.RunUntil(5 * time.Minute); err != nil {
		panic(err)
	}

	var total time.Duration
	for _, d := range iterTimes {
		total += d
	}
	fmt.Printf("4 ranks across 2 sites, %d iterations under contention\n", iterations)
	fmt.Printf("global Allreduce sum = %v (want 10 = 1+2+3+4)\n", finalSum)
	fmt.Printf("mean iteration time: %v (halo exchange + 2 reductions)\n",
		total/time.Duration(len(iterTimes)))
}
