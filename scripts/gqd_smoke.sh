#!/usr/bin/env bash
# Smoke-test the gqd observability daemon end to end: start a short
# fig5 run on a free port, require 200 + non-empty bodies from every
# endpoint, then SIGTERM and require a clean shutdown. Run via
# `make smoke-gqd`; CI runs it in the gqd-smoke job.
set -euo pipefail

bin="${TMPDIR:-/tmp}/gqd-smoke-bin"
log="$(mktemp)"
body="$(mktemp)"
go build -o "$bin" ./cmd/gqd

pid=""
trap 'kill "$pid" 2>/dev/null || true; rm -f "$bin" "$log" "$body"' EXIT

# Start the daemon on a kernel-assigned free port and wait for it to
# report its listen address. Port 0 avoids picking a busy port, but a
# parallel test run can still race the daemon off its socket (or kill
# it outright), so retry the whole launch a few times before giving up.
port=""
for attempt in 1 2 3; do
  : >"$log"
  "$bin" -addr 127.0.0.1:0 -scenario fig5 -dur 10s -pace 0 >"$log" 2>&1 &
  pid=$!
  for _ in $(seq 1 100); do
    port="$(sed -n 's#.*http://127\.0\.0\.1:\([0-9]*\).*#\1#p' "$log")"
    [ -n "$port" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
      break # daemon died before binding; retry
    fi
    sleep 0.1
  done
  [ -n "$port" ] && break
  echo "gqd smoke: attempt $attempt: daemon never reported a listen address, retrying" >&2
  kill "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
  sleep 0.5
done
if [ -z "$port" ]; then
  echo "gqd smoke: daemon never reported a listen address after 3 attempts" >&2
  cat "$log" >&2
  exit 1
fi
base="http://127.0.0.1:$port"

check() {
  path="$1"
  code="$(curl -s -o "$body" -w '%{http_code}' "$base$path")"
  if [ "$code" != 200 ]; then
    echo "gqd smoke: GET $path -> HTTP $code" >&2
    cat "$body" >&2
    exit 1
  fi
  if [ ! -s "$body" ]; then
    echo "gqd smoke: GET $path returned an empty body" >&2
    exit 1
  fi
  echo "gqd smoke: GET $path OK ($(wc -c <"$body") bytes)"
}

check /healthz
# The healthy-path body must be the documented JSON shape: a healthy
# status, the scenario name, and progress fields. (A halted or
# panicked scenario answers 503 instead, which check would reject.)
for field in '"status":"ok"' '"scenario":"fig5"' '"virtual_now_ns"' '"virtual_dur_ns"' '"done"' '"spans"'; do
  if ! grep -q "$field" "$body"; then
    echo "gqd smoke: /healthz body missing $field" >&2
    cat "$body" >&2
    exit 1
  fi
done
echo "gqd smoke: /healthz body shape OK"
check /metrics
check '/traces?limit=1'
check '/events?n=5'

kill -TERM "$pid"
wait "$pid"
if ! grep -q 'shut down cleanly' "$log"; then
  echo "gqd smoke: daemon did not shut down cleanly" >&2
  cat "$log" >&2
  exit 1
fi
echo "gqd smoke: all endpoints healthy, clean SIGTERM shutdown"
